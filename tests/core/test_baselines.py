"""Tests for the CHR and RAN baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import (
    chronological_ordering,
    random_ordering,
    random_ordering_expected_ap,
)
from repro.twitter.entities import Tweet


def tweets_at(timestamps: list[int]) -> list[Tweet]:
    return [
        Tweet(tweet_id=i, author_id=0, text=f"t{i}", timestamp=ts)
        for i, ts in enumerate(timestamps)
    ]


class TestChronological:
    def test_most_recent_first(self):
        order = chronological_ordering(tweets_at([5, 9, 1]))
        assert order == [1, 0, 2]

    def test_tie_broken_by_tweet_id_descending(self):
        order = chronological_ordering(tweets_at([3, 3]))
        assert order == [1, 0]

    def test_empty(self):
        assert chronological_ordering([]) == []


class TestRandomOrdering:
    def test_is_permutation(self):
        order = random_ordering(tweets_at([1, 2, 3, 4]), np.random.default_rng(0))
        assert sorted(order) == [0, 1, 2, 3]


class TestExpectedRandomAp:
    def test_no_relevant_items(self):
        assert random_ordering_expected_ap([False, False]) == 0.0

    def test_empty(self):
        assert random_ordering_expected_ap([]) == 0.0

    def test_all_relevant_is_one(self):
        assert random_ordering_expected_ap([True, True], iterations=10) == pytest.approx(1.0)

    def test_near_prevalence_for_one_in_five(self):
        # The paper's 1:4 positive:negative protocol; expected AP of a
        # random ranking with 1 relevant item among 5 is
        # mean over positions of 1/position-of-relevant ≈ 0.457.
        flags = [True] + [False] * 4
        estimate = random_ordering_expected_ap(flags, iterations=4000, seed=1)
        exact = np.mean([1 / k for k in range(1, 6)])
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_seed_reproducible(self):
        flags = [True, False, False]
        a = random_ordering_expected_ap(flags, iterations=50, seed=3)
        b = random_ordering_expected_ap(flags, iterations=50, seed=3)
        assert a == b
