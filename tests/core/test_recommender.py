"""Tests for the ranking recommender."""

from __future__ import annotations

from repro.core.recommender import RankingRecommender
from repro.models.bag import TokenNGramModel
from repro.models.base import TextDoc


def doc(text: str) -> TextDoc:
    return TextDoc.from_tokens(tuple(text.split()))


class TestRankingRecommender:
    def test_ranks_by_descending_score(self, tiny_corpus):
        rec = RankingRecommender(TokenNGramModel(n=1, weighting="TF")).fit(tiny_corpus)
        um = rec.build_profile([doc("cats dogs pets"), doc("cat mat")])
        candidates = [doc("stock ticker"), doc("cats and dogs"), doc("market today")]
        ranking = rec.rank(um, candidates)
        assert ranking[0].position == 1  # the pets doc wins
        scores = [item.score for item in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_ties_broken_by_input_position(self, tiny_corpus):
        rec = RankingRecommender(TokenNGramModel(n=1, weighting="TF")).fit(tiny_corpus)
        um = rec.build_profile([doc("cats")])
        # Both candidates score zero; input order must be preserved.
        ranking = rec.rank(um, [doc("alpha"), doc("beta")])
        assert [item.position for item in ranking] == [0, 1]

    def test_every_candidate_ranked_once(self, tiny_corpus):
        rec = RankingRecommender(TokenNGramModel(n=1, weighting="TF")).fit(tiny_corpus)
        um = rec.build_profile(tiny_corpus[:2])
        ranking = rec.rank(um, tiny_corpus)
        assert sorted(item.position for item in ranking) == list(range(len(tiny_corpus)))

    def test_fit_returns_self(self, tiny_corpus):
        rec = RankingRecommender(TokenNGramModel(n=1, weighting="TF"))
        assert rec.fit(tiny_corpus) is rec

    def test_labels_forwarded_to_model(self, tiny_corpus):
        model = TokenNGramModel(n=1, weighting="TF", aggregation="rocchio")
        rec = RankingRecommender(model).fit(tiny_corpus)
        um = rec.build_profile([doc("good stuff"), doc("bad stuff")], labels=[1, 0])
        assert um["good"] > 0 > um["bad"]
