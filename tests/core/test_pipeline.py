"""Tests for the end-to-end evaluation pipeline."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.errors import ConfigurationError, DataGenerationError
from repro.models.bag import TokenNGramModel
from repro.models.graph import TokenNGramGraphModel
from repro.twitter.entities import UserType


@pytest.fixture(scope="module")
def pipeline(small_dataset):
    return ExperimentPipeline(small_dataset, seed=1, max_train_docs_per_user=80)


@pytest.fixture(scope="module")
def users(small_dataset, small_groups, pipeline):
    return pipeline.eligible_users(small_groups[UserType.ALL])


class TestEligibility:
    def test_eligible_users_have_splits(self, pipeline, users):
        assert users
        for uid in users:
            split = pipeline.split_for(uid)
            assert split.positives

    def test_split_cached(self, pipeline, users):
        assert pipeline.split_for(users[0]) is pipeline.split_for(users[0])


class TestEvaluate:
    def test_result_structure(self, pipeline, users):
        model = TokenNGramModel(n=1, weighting="TF")
        result = pipeline.evaluate(model, RepresentationSource.R, users)
        assert result.model == "TN"
        assert result.source is RepresentationSource.R
        assert set(result.per_user_ap) == set(users)
        assert all(0.0 <= ap <= 1.0 for ap in result.per_user_ap.values())
        assert result.training_seconds >= 0.0
        assert result.testing_seconds >= 0.0

    def test_map_is_mean_of_aps(self, pipeline, users):
        model = TokenNGramModel(n=1, weighting="TF")
        result = pipeline.evaluate(model, RepresentationSource.R, users)
        aps = result.per_user_ap
        expected = sum(aps[u] for u in sorted(aps)) / len(aps)
        assert result.map_score == pytest.approx(expected)

    def test_content_model_beats_random(self, pipeline, users):
        model = TokenNGramModel(n=1, weighting="TF-IDF")
        result = pipeline.evaluate(model, RepresentationSource.R, users)
        ran = pipeline.evaluate_random(users, iterations=100)
        ran_map = sum(ran[u] for u in sorted(ran)) / len(ran)
        assert result.map_score > ran_map

    def test_rocchio_on_source_without_negatives_rejected(self, pipeline, users):
        model = TokenNGramModel(n=1, weighting="TF", aggregation="rocchio")
        with pytest.raises(ConfigurationError):
            pipeline.evaluate(model, RepresentationSource.R, users)

    def test_rocchio_on_negative_source_accepted(self, pipeline, users):
        model = TokenNGramModel(n=1, weighting="TF", aggregation="rocchio")
        result = pipeline.evaluate(model, RepresentationSource.E, users)
        assert result.map_score >= 0.0

    def test_graph_model_runs(self, pipeline, users):
        result = pipeline.evaluate(
            TokenNGramGraphModel(n=1), RepresentationSource.TR, users
        )
        assert 0.0 <= result.map_score <= 1.0

    def test_no_eligible_users_raises(self, small_dataset):
        fresh = ExperimentPipeline(small_dataset, seed=1)
        quiet = [
            u.user_id for u in small_dataset.users
            if not small_dataset.retweets_of(u.user_id)
        ]
        if not quiet:
            pytest.skip("every user has retweets")
        with pytest.raises(DataGenerationError):
            fresh.evaluate(TokenNGramModel(n=1, weighting="TF"),
                           RepresentationSource.R, quiet)

    def test_max_train_docs_cap(self, small_dataset, users):
        capped = ExperimentPipeline(small_dataset, seed=1, max_train_docs_per_user=3)
        tweets = capped._train_tweets_for(users[0], RepresentationSource.E)
        assert len(tweets) <= 3


class TestBaselines:
    def test_chronological_returns_per_user_ap(self, pipeline, users):
        aps = pipeline.evaluate_chronological(users)
        assert set(aps) == set(users)
        assert all(0.0 <= v <= 1.0 for v in aps.values())

    def test_random_near_class_prevalence(self, pipeline, users):
        aps = pipeline.evaluate_random(users, iterations=200)
        mean_ap = sum(aps[u] for u in sorted(aps)) / len(aps)
        # 1 positive per 5 candidates gives an expected AP well below 0.5
        # and above the positive rate 0.2.
        assert 0.15 < mean_ap < 0.55
