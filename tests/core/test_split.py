"""Tests for the train/test split protocol."""

from __future__ import annotations

import pytest

from repro.core.sources import RepresentationSource, retweeted_original_ids
from repro.core.split import split_user, train_tweets
from repro.errors import DataGenerationError


def eligible_user(dataset, min_retweets=8):
    for user in dataset.users:
        if len(dataset.retweets_of(user.user_id)) >= min_retweets:
            return user.user_id
    pytest.skip("no eligible user in the small dataset")


class TestSplitStructure:
    def test_positives_are_incoming_originals(self, small_dataset):
        uid = eligible_user(small_dataset)
        split = split_user(small_dataset, uid)
        followees = small_dataset.graph.followees(uid)
        for tweet in split.positives:
            assert tweet.author_id in followees
            assert not tweet.is_retweet

    def test_positives_were_retweeted(self, small_dataset):
        uid = eligible_user(small_dataset)
        split = split_user(small_dataset, uid)
        liked = retweeted_original_ids(small_dataset, uid)
        for tweet in split.positives:
            assert tweet.tweet_id in liked

    def test_negatives_never_retweeted(self, small_dataset):
        uid = eligible_user(small_dataset)
        split = split_user(small_dataset, uid)
        liked = retweeted_original_ids(small_dataset, uid)
        for tweet in split.negatives:
            assert tweet.tweet_id not in liked
            assert tweet.timestamp >= split.cutoff

    def test_negatives_were_seen(self, small_dataset):
        # With read-tracking available, every negative is a tweet the
        # user demonstrably saw and chose not to retweet.
        uid = eligible_user(small_dataset)
        split = split_user(small_dataset, uid)
        seen = small_dataset.seen[uid]
        for tweet in split.negatives:
            assert tweet.tweet_id in seen

    def test_four_negatives_per_positive(self, small_dataset):
        uid = eligible_user(small_dataset)
        split = split_user(small_dataset, uid, negatives_per_positive=4)
        assert len(split.negatives) <= 4 * len(split.positives)

    def test_test_fraction_controls_size(self, small_dataset):
        uid = eligible_user(small_dataset)
        n_retweets = len([
            t for t in small_dataset.retweets_of(uid) if t.retweet_of is not None
        ])
        split = split_user(small_dataset, uid, test_fraction=0.2)
        # The paper's 20% most recent retweets; positives deduplicate by
        # original, so <= holds.
        assert len(split.positives) <= max(1, round(n_retweets * 0.2))

    def test_test_set_is_shuffled_union(self, small_dataset):
        uid = eligible_user(small_dataset)
        split = split_user(small_dataset, uid)
        assert sorted(t.tweet_id for t in split.test_set) == sorted(
            t.tweet_id for t in split.positives + split.negatives
        )

    def test_relevant_ids(self, small_dataset):
        uid = eligible_user(small_dataset)
        split = split_user(small_dataset, uid)
        assert split.relevant_ids == {t.tweet_id for t in split.positives}

    def test_deterministic_per_seed(self, small_dataset):
        uid = eligible_user(small_dataset)
        a = split_user(small_dataset, uid, seed=5)
        b = split_user(small_dataset, uid, seed=5)
        assert [t.tweet_id for t in a.test_set] == [t.tweet_id for t in b.test_set]

    def test_invalid_parameters(self, small_dataset):
        uid = eligible_user(small_dataset)
        with pytest.raises(ValueError):
            split_user(small_dataset, uid, test_fraction=0.0)
        with pytest.raises(ValueError):
            split_user(small_dataset, uid, negatives_per_positive=-1)

    def test_user_without_retweets_raises(self, small_dataset):
        quiet = [
            u.user_id for u in small_dataset.users
            if not small_dataset.retweets_of(u.user_id)
        ]
        if not quiet:
            pytest.skip("every user retweeted something")
        with pytest.raises(DataGenerationError):
            split_user(small_dataset, quiet[0])


class TestTrainTweets:
    def test_restricted_to_training_phase(self, small_dataset):
        uid = eligible_user(small_dataset)
        split = split_user(small_dataset, uid)
        for source in (RepresentationSource.R, RepresentationSource.E):
            for tweet in train_tweets(small_dataset, uid, source, split):
                assert tweet.timestamp < split.cutoff

    def test_no_leakage_of_test_documents(self, small_dataset):
        uid = eligible_user(small_dataset)
        split = split_user(small_dataset, uid)
        test_ids = {t.tweet_id for t in split.test_set}
        for source in (RepresentationSource.R, RepresentationSource.TR,
                       RepresentationSource.E):
            train_ids = {
                t.tweet_id
                for t in train_tweets(small_dataset, uid, source, split)
            }
            assert not train_ids & test_ids
