"""Tests for the temporal weighting axis (none / window / half-life)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.temporal import NO_DECAY, TEMPORAL_KINDS, TemporalWeighting
from repro.errors import ConfigurationError


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            TemporalWeighting(kind="linear")

    def test_window_requires_window(self):
        with pytest.raises(ConfigurationError):
            TemporalWeighting(kind="window")

    def test_half_life_requires_half_life(self):
        with pytest.raises(ConfigurationError):
            TemporalWeighting(kind="half-life")

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TemporalWeighting(kind="window", window=0)

    def test_half_life_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TemporalWeighting(kind="half-life", half_life=-1)

    def test_none_rejects_stray_parameters(self):
        with pytest.raises(ConfigurationError):
            TemporalWeighting(kind="none", window=10)

    def test_window_rejects_half_life(self):
        with pytest.raises(ConfigurationError):
            TemporalWeighting(kind="window", window=10, half_life=5.0)

    def test_kinds_constant_matches(self):
        assert TEMPORAL_KINDS == ("none", "window", "half-life")


class TestWeights:
    def test_identity_weighs_everything_one(self):
        tw = TemporalWeighting()
        assert tw.is_identity
        assert tw.weight(100, 0) == 1.0
        assert tw.weight(100, 100) == 1.0

    def test_window_keeps_recent_drops_old(self):
        tw = TemporalWeighting(kind="window", window=10)
        assert tw.weight(100, 95) == 1.0  # age 5, inside
        assert tw.weight(100, 90) == 1.0  # age 10, boundary is inside
        assert tw.weight(100, 89) == 0.0  # age 11, outside

    def test_half_life_halves_per_period(self):
        tw = TemporalWeighting(kind="half-life", half_life=10)
        assert tw.weight(100, 100) == 1.0
        assert tw.weight(100, 90) == pytest.approx(0.5)
        assert tw.weight(100, 80) == pytest.approx(0.25)

    def test_future_timestamps_clamp_to_full_weight(self):
        window = TemporalWeighting(kind="window", window=10)
        decay = TemporalWeighting(kind="half-life", half_life=10)
        assert window.weight(100, 200) == 1.0
        assert decay.weight(100, 200) == 1.0

    def test_weight_fn_reads_timestamp_from_fold_key(self):
        tw = TemporalWeighting(kind="half-life", half_life=10)
        fn = tw.weight_fn(100)
        assert fn((90, 42)) == pytest.approx(0.5)  # (timestamp, tweet_id)
        assert fn(90) == pytest.approx(0.5)  # bare timestamps work too


class TestParseAndLabels:
    def test_parse_none(self):
        assert TemporalWeighting.parse("none") == NO_DECAY

    def test_parse_window(self):
        tw = TemporalWeighting.parse("window:40")
        assert tw.kind == "window"
        assert tw.window == 40

    def test_parse_half_life(self):
        tw = TemporalWeighting.parse("half-life:80")
        assert tw.kind == "half-life"
        assert tw.half_life == 80.0

    def test_parse_exp_alias(self):
        assert TemporalWeighting.parse("exp:80") == TemporalWeighting.parse(
            "half-life:80"
        )

    def test_parse_garbage_rejected(self):
        for bad in ("window", "window:x", "half-life:", "sliding:5", "window:-3"):
            with pytest.raises(ConfigurationError):
                TemporalWeighting.parse(bad)

    def test_label_roundtrips_through_parse(self):
        for tw in (
            NO_DECAY,
            TemporalWeighting(kind="window", window=60),
            TemporalWeighting(kind="half-life", half_life=2.5),
        ):
            assert TemporalWeighting.parse(tw.label()) == tw

    def test_describe_distinguishes_parameters(self):
        a = TemporalWeighting(kind="half-life", half_life=10)
        b = TemporalWeighting(kind="half-life", half_life=20)
        assert a.describe() != b.describe()
        assert dict(a.describe())["kind"] == "half-life"


class TestPicklability:
    """GridSpec ships the axis to pool workers; it must survive pickling."""

    def test_roundtrip(self):
        for tw in (
            NO_DECAY,
            TemporalWeighting(kind="window", window=60),
            TemporalWeighting(kind="half-life", half_life=10),
        ):
            clone = pickle.loads(pickle.dumps(tw))
            assert clone == tw
            assert clone.weight(100, 90) == tw.weight(100, 90)

    def test_weight_fn_of_unpickled_instance(self):
        tw = pickle.loads(
            pickle.dumps(TemporalWeighting(kind="half-life", half_life=10))
        )
        assert tw.weight_fn(100)((90, 1)) == pytest.approx(0.5)
