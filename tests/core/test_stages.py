"""Tests for the staged evaluation engine's artifacts and cache keys."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.core.stages import ArtifactCache, artifact_key, canonical_params
from repro.obs.telemetry import Telemetry


class TestCanonicalParams:
    def test_key_order_does_not_matter(self):
        assert canonical_params({"a": 1, "b": 2}) == canonical_params({"b": 2, "a": 1})

    def test_compact_and_sorted(self):
        assert canonical_params({"b": 2, "a": 1}) == '{"a":1,"b":2}'

    def test_non_json_values_stringified(self):
        # Enum-ish / arbitrary objects serialise through str() instead of
        # raising, so params dicts holding rich values still get keys.
        class Wrapped:
            def __str__(self) -> str:
                return "wrapped"

        assert canonical_params({"x": Wrapped()}) == '{"x":"wrapped"}'


class TestArtifactKey:
    def test_deterministic(self):
        assert artifact_key(stage="s", seed=1) == artifact_key(stage="s", seed=1)

    def test_sensitive_to_every_component(self):
        base = artifact_key(stage="s", seed=1)
        assert artifact_key(stage="s", seed=2) != base
        assert artifact_key(stage="t", seed=1) != base

    def test_short_hex(self):
        key = artifact_key(stage="s")
        assert len(key) == 16
        int(key, 16)  # parses as hex


class TestArtifactCache:
    def test_build_once_then_hit(self):
        cache = ArtifactCache("c")
        builds = []
        for _ in range(3):
            cache.get_or_build("k", lambda: builds.append(1) or "value")
        assert builds == [1]
        assert "k" in cache and len(cache) == 1

    def test_counters(self):
        telemetry = Telemetry()
        cache = ArtifactCache("c")
        cache.get_or_build("k", lambda: "v", telemetry)
        cache.get_or_build("k", lambda: "v", telemetry)
        cache.get_or_build("j", lambda: "v", telemetry)
        metrics = telemetry.metrics.snapshot()
        assert metrics["c.miss"]["value"] == 2
        assert metrics["c.hit"]["value"] == 1


class TestCorpusStageSharing:
    @pytest.fixture()
    def pipeline(self, small_dataset):
        return ExperimentPipeline(
            small_dataset, seed=1, max_train_docs_per_user=40, telemetry=Telemetry()
        )

    def test_corpus_prepared_once_per_source(self, pipeline, small_groups):
        from repro.twitter.entities import UserType

        users = pipeline.eligible_users(small_groups[UserType.ALL])
        first = pipeline.prepare_corpus(RepresentationSource.R, users)
        again = pipeline.prepare_corpus(RepresentationSource.R, users)
        other = pipeline.prepare_corpus(RepresentationSource.E, users)
        assert again is first
        assert other is not first
        metrics = pipeline.telemetry.metrics.snapshot()
        assert metrics["corpus_cache.miss"]["value"] == 2
        assert metrics["corpus_cache.hit"]["value"] == 1

    def test_corpus_key_ingredients(self, pipeline, small_groups):
        from repro.twitter.entities import UserType

        users = tuple(pipeline.eligible_users(small_groups[UserType.ALL]))
        key = pipeline.corpus_key(RepresentationSource.R, users)
        assert key != pipeline.corpus_key(RepresentationSource.E, users)
        assert key != pipeline.corpus_key(RepresentationSource.R, users[:-1])

    def test_factory_keyed_on_user_set(self, pipeline, small_groups):
        from repro.twitter.entities import UserType

        users = pipeline.eligible_users(small_groups[UserType.ALL])
        assert len(users) >= 3
        full = pipeline._factory_for(users)
        subset = pipeline._factory_for(users[:-1])
        assert subset is not full  # a fresh fit, not the first one reused
        assert pipeline._factory_for(users) is full  # same set -> cached
