"""Tests for the 13 representation sources."""

from __future__ import annotations

import pytest

from repro.core.sources import (
    ALL_SOURCES,
    ATOMIC_SOURCES,
    COMPOSITE_SOURCES,
    RepresentationSource,
    retweeted_original_ids,
)


class TestInventory:
    def test_thirteen_sources(self):
        assert len(ALL_SOURCES) == 13
        assert len(ATOMIC_SOURCES) == 5
        assert len(COMPOSITE_SOURCES) == 8

    def test_atoms_of_composites(self):
        assert RepresentationSource.TR.atoms == ("T", "R")
        assert RepresentationSource.EF.atoms == ("E", "F")

    def test_negative_example_sources_match_paper(self):
        # The paper pairs Rocchio with C, E, TE, RE, TC, RC and EF.
        with_negatives = {s.value for s in ALL_SOURCES if s.has_negative_examples}
        assert with_negatives == {"C", "E", "TE", "RE", "TC", "RC", "EF"}


class TestTweetViews:
    def test_atomic_sources_match_dataset_views(self, small_dataset):
        uid = small_dataset.users[0].user_id
        assert [t.tweet_id for t in RepresentationSource.R.tweets_for(small_dataset, uid)] == \
            sorted(t.tweet_id for t in small_dataset.retweets_of(uid))
        assert {t.tweet_id for t in RepresentationSource.E.tweets_for(small_dataset, uid)} == \
            {t.tweet_id for t in small_dataset.incoming(uid)}

    def test_union_deduplicates(self, small_dataset):
        uid = small_dataset.users[0].user_id
        merged = RepresentationSource.RE.tweets_for(small_dataset, uid)
        ids = [t.tweet_id for t in merged]
        assert len(ids) == len(set(ids))
        r_ids = {t.tweet_id for t in small_dataset.retweets_of(uid)}
        e_ids = {t.tweet_id for t in small_dataset.incoming(uid)}
        assert set(ids) == r_ids | e_ids

    def test_union_time_ordered(self, small_dataset):
        uid = small_dataset.users[0].user_id
        merged = RepresentationSource.TR.tweets_for(small_dataset, uid)
        stamps = [t.timestamp for t in merged]
        assert stamps == sorted(stamps)


class TestLabels:
    def test_sources_without_negatives_label_all_positive(self, small_dataset):
        uid = small_dataset.users[0].user_id
        tweets = RepresentationSource.TR.tweets_for(small_dataset, uid)
        labels = RepresentationSource.TR.labels_for(small_dataset, uid, tweets)
        assert labels == [1] * len(tweets)

    def test_e_source_labels_retweeted_as_positive(self, small_dataset):
        # Find a user with at least one retweet whose original is known.
        for user in small_dataset.users:
            uid = user.user_id
            liked = retweeted_original_ids(small_dataset, uid)
            if not liked:
                continue
            tweets = RepresentationSource.E.tweets_for(small_dataset, uid)
            labels = RepresentationSource.E.labels_for(small_dataset, uid, tweets)
            by_id = dict(zip((t.tweet_id for t in tweets), labels))
            hits = [tid for tid in liked if tid in by_id]
            if hits:
                assert all(by_id[tid] == 1 for tid in hits)
                assert 0 in labels  # unretweeted incoming tweets are negative
                return
        pytest.skip("no user with resolvable retweets in the small dataset")

    def test_retweeted_original_ids(self, small_dataset):
        for user in small_dataset.users[:5]:
            uid = user.user_id
            expected = {
                t.retweet_of for t in small_dataset.retweets_of(uid)
                if t.retweet_of is not None
            }
            assert retweeted_original_ids(small_dataset, uid) == expected
