"""Tests for the followee/hashtag recommendation extensions."""

from __future__ import annotations

import pytest

from repro.core.extensions import FolloweeRecommender, HashtagRecommender
from repro.errors import EmptyCorpusError
from repro.models.bag import TokenNGramModel


def make_model() -> TokenNGramModel:
    return TokenNGramModel(n=1, weighting="TF")


class TestFolloweeRecommender:
    @pytest.fixture(scope="class")
    def recommender(self, small_dataset) -> FolloweeRecommender:
        return FolloweeRecommender(
            small_dataset, make_model(), min_candidate_tweets=3
        ).fit()

    def _profiled_user(self, recommender):
        return next(iter(recommender._profiles))

    def test_excludes_self_and_existing_followees(self, small_dataset, recommender):
        uid = self._profiled_user(recommender)
        suggestions = recommender.recommend(uid, k=50)
        suggested = {c.candidate for c in suggestions}
        assert uid not in suggested
        assert not suggested & small_dataset.graph.followees(uid)

    def test_scores_descending(self, recommender):
        uid = self._profiled_user(recommender)
        scores = [c.score for c in recommender.recommend(uid, k=10)]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_results(self, recommender):
        uid = self._profiled_user(recommender)
        assert len(recommender.recommend(uid, k=2)) <= 2

    def test_similar_interest_user_ranked_above_dissimilar(
        self, small_dataset, recommender
    ):
        import numpy as np
        uid = self._profiled_user(recommender)
        suggestions = recommender.recommend(uid, k=len(small_dataset.users))
        if len(suggestions) < 3:
            pytest.skip("too few candidates")
        me = small_dataset.user(uid).interests
        def ground_truth(c):
            other = small_dataset.user(c.candidate).interests
            return float(np.dot(me, other) / (np.linalg.norm(me) * np.linalg.norm(other)))
        top = sum(ground_truth(c) for c in suggestions[:3]) / 3
        bottom = sum(ground_truth(c) for c in suggestions[-3:]) / 3
        assert top >= bottom - 0.1  # content similarity tracks interest similarity

    def test_unprofiled_user_raises(self, small_dataset, recommender):
        quiet = [
            u.user_id for u in small_dataset.users
            if len(small_dataset.outgoing(u.user_id)) < 3
        ]
        if not quiet:
            pytest.skip("everyone is active enough")
        with pytest.raises(EmptyCorpusError):
            recommender.recommend(quiet[0])

    def test_impossible_threshold_raises(self, small_dataset):
        rec = FolloweeRecommender(
            small_dataset, make_model(), min_candidate_tweets=10**9
        )
        with pytest.raises(EmptyCorpusError):
            rec.fit()

    def test_recommend_autofits(self, small_dataset):
        rec = FolloweeRecommender(small_dataset, make_model(), min_candidate_tweets=3)
        uid = max(
            (u.user_id for u in small_dataset.users),
            key=lambda u: len(small_dataset.outgoing(u)),
        )
        assert rec.recommend(uid, k=1)  # no explicit fit() needed


class TestHashtagRecommender:
    @pytest.fixture(scope="class")
    def recommender(self, small_dataset) -> HashtagRecommender:
        return HashtagRecommender(small_dataset, make_model(), min_tag_count=2).fit()

    def test_known_tags_are_hashtags(self, recommender):
        assert recommender.known_tags
        assert all(tag.startswith("#") for tag in recommender.known_tags)

    def test_text_recommendation_returns_scored_tags(self, recommender):
        suggestions = recommender.recommend_for_text("anything at all", k=3)
        assert len(suggestions) <= 3
        assert all(c.candidate in recommender.known_tags for c in suggestions)
        scores = [c.score for c in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_tag_text_retrieves_own_tag(self, small_dataset, recommender):
        # A tweet that actually carries a tag should rank that tag highly.
        tag = recommender.known_tags[0]
        carriers = [
            t for t in small_dataset.tweets
            if not t.is_retweet and tag in t.text.lower().split()
        ]
        suggestions = recommender.recommend_for_text(carriers[0].text, k=3)
        assert tag in {c.candidate for c in suggestions}

    def test_user_recommendation(self, small_dataset, recommender):
        uid = max(
            (u.user_id for u in small_dataset.users),
            key=lambda u: len(small_dataset.outgoing(u)),
        )
        suggestions = recommender.recommend_for_user(uid, k=4)
        assert suggestions
        assert all(c.candidate in recommender.known_tags for c in suggestions)

    def test_user_without_tweets_raises(self, small_dataset, recommender):
        quiet = [
            u.user_id for u in small_dataset.users
            if not small_dataset.outgoing(u.user_id)
        ]
        if not quiet:
            pytest.skip("everyone tweeted")
        with pytest.raises(EmptyCorpusError):
            recommender.recommend_for_user(quiet[0])

    def test_impossible_threshold_raises(self, small_dataset):
        rec = HashtagRecommender(small_dataset, make_model(), min_tag_count=10**9)
        with pytest.raises(EmptyCorpusError):
            rec.fit()
