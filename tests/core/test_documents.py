"""Tests for the tweet -> TextDoc conversion."""

from __future__ import annotations

import pytest

from repro.core.documents import DocumentFactory
from repro.errors import NotFittedError
from repro.twitter.entities import Tweet


def tweet(text: str, tid: int = 0) -> Tweet:
    return Tweet(tweet_id=tid, author_id=0, text=text, timestamp=0)


class TestDocumentFactory:
    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            DocumentFactory().to_doc(tweet("hello"))

    def test_learns_stop_words_from_training(self):
        factory = DocumentFactory(top_k_stop_words=1)
        factory.fit([tweet("the cat"), tweet("the dog"), tweet("the bird")])
        assert factory.stop_words == {"the"}
        doc = factory.to_doc(tweet("the cat runs"))
        assert doc.tokens == ("cat", "runs")

    def test_text_is_joined_tokens(self):
        factory = DocumentFactory(top_k_stop_words=0).fit([tweet("x")])
        doc = factory.to_doc(tweet("Hello WORLD"))
        assert doc.text == "hello world"
        assert doc.tokens == ("hello", "world")

    def test_to_docs_preserves_order(self):
        factory = DocumentFactory(top_k_stop_words=0).fit([tweet("x")])
        docs = factory.to_docs([tweet("one"), tweet("two")])
        assert [d.text for d in docs] == ["one", "two"]

    def test_special_tokens_survive(self):
        factory = DocumentFactory(top_k_stop_words=0).fit([tweet("x")])
        doc = factory.to_doc(tweet("see #edbt @alice :) http://t.co/a1"))
        assert "#edbt" in doc.tokens
        assert "@alice" in doc.tokens
        assert ":)" in doc.tokens
