"""Tests for UserProfiles cache keying under temporal parameters.

The invariant: the profile cache key covers every profile-affecting
parameter (``profile_params``: aggregation knobs plus temporal decay)
and the protocol version, so changing a decay or window setting is a
cache *miss* -- a stale hit would silently serve profiles built under
different parameters.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.core.stages import PROFILE_PROTOCOL_VERSION
from repro.core.temporal import NO_DECAY, TemporalWeighting
from repro.models.bag import TokenNGramModel
from repro.twitter.dataset import select_user_groups
from repro.twitter.entities import UserType


@pytest.fixture(scope="module")
def pipeline(small_dataset):
    return ExperimentPipeline(small_dataset, seed=1, max_train_docs_per_user=40)


@pytest.fixture(scope="module")
def prepared(pipeline, small_dataset):
    groups = select_user_groups(small_dataset, group_size=5, min_retweets=5)
    users = pipeline.eligible_users(sorted(groups[UserType.ALL]))
    return pipeline.prepare_corpus(RepresentationSource.R, users)


def fitted_tn(pipeline, prepared, temporal=None):
    model = TokenNGramModel(n=1, weighting="TF", aggregation="centroid")
    if temporal is not None:
        model.with_temporal(temporal)
    return pipeline.fit_model(model, prepared)


class TestProfileKey:
    def test_key_is_deterministic(self, pipeline, prepared):
        a = fitted_tn(pipeline, prepared)
        b = fitted_tn(pipeline, prepared)
        assert pipeline.profile_key(a) == pipeline.profile_key(b)

    def test_temporal_changes_the_key(self, pipeline, prepared):
        plain = fitted_tn(pipeline, prepared)
        decayed = fitted_tn(
            pipeline, prepared, TemporalWeighting(kind="half-life", half_life=10)
        )
        assert pipeline.profile_key(plain) != pipeline.profile_key(decayed)

    def test_decay_parameter_changes_the_key(self, pipeline, prepared):
        """Same kind, different half-life: still a miss."""
        a = fitted_tn(
            pipeline, prepared, TemporalWeighting(kind="half-life", half_life=10)
        )
        b = fitted_tn(
            pipeline, prepared, TemporalWeighting(kind="half-life", half_life=20)
        )
        assert pipeline.profile_key(a) != pipeline.profile_key(b)

    def test_window_parameter_changes_the_key(self, pipeline, prepared):
        a = fitted_tn(
            pipeline, prepared, TemporalWeighting(kind="window", window=10)
        )
        b = fitted_tn(
            pipeline, prepared, TemporalWeighting(kind="window", window=20)
        )
        assert pipeline.profile_key(a) != pipeline.profile_key(b)

    def test_kind_changes_the_key(self, pipeline, prepared):
        a = fitted_tn(
            pipeline, prepared, TemporalWeighting(kind="window", window=10)
        )
        b = fitted_tn(
            pipeline, prepared, TemporalWeighting(kind="half-life", half_life=10)
        )
        assert pipeline.profile_key(a) != pipeline.profile_key(b)


class TestBuildProfiles:
    def test_cache_hit_returns_same_artifact(self, pipeline, prepared):
        fitted = fitted_tn(pipeline, prepared)
        first = pipeline.build_profiles(fitted)
        second = pipeline.build_profiles(fitted)
        assert second is first

    def test_changed_decay_is_a_miss_with_different_profiles(
        self, pipeline, prepared
    ):
        plain = pipeline.build_profiles(fitted_tn(pipeline, prepared))
        decayed = pipeline.build_profiles(
            fitted_tn(
                pipeline, prepared, TemporalWeighting(kind="half-life", half_life=5)
            )
        )
        assert decayed is not plain
        assert decayed.key != plain.key
        changed = [
            uid
            for uid in plain.profiles
            if plain.profiles[uid] != decayed.profiles[uid]
        ]
        assert changed  # decay visibly reweighs at least one profile

    def test_identity_decay_profiles_match_undecayed_values(
        self, pipeline, prepared
    ):
        """NO_DECAY weighs everything 1.0: same values, distinct key."""
        plain = pipeline.build_profiles(fitted_tn(pipeline, prepared))
        identity = pipeline.build_profiles(
            fitted_tn(pipeline, prepared, NO_DECAY)
        )
        assert set(identity.profiles) == set(plain.profiles)
        for uid in plain.profiles:
            assert identity.profiles[uid] == plain.profiles[uid]

    def test_artifact_records_params_and_version(self, pipeline, prepared):
        temporal = TemporalWeighting(kind="window", window=15)
        artifact = pipeline.build_profiles(
            fitted_tn(pipeline, prepared, temporal)
        )
        assert artifact.version == PROFILE_PROTOCOL_VERSION
        assert artifact.params["temporal"] == dict(temporal.describe())
