"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

SMALL = ["--users", "16", "--ticks", "40", "--seed", "4",
         "--group-size", "3", "--min-retweets", "3"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--model", "WORD2VEC"])

    def test_sources_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--out", "x.json", "--sources", "Z"])


class TestGenerate:
    def test_prints_table2(self, capsys):
        assert main(["generate", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "MicroblogDataset" in out
        assert "Outgoing tweets (TR)" in out


class TestEvaluate:
    def test_reports_map_and_baselines(self, capsys):
        assert main(["evaluate", "--model", "TN", "--source", "R", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "MAP" in out and "RAN" in out and "CHR" in out


class TestSweepAndReport:
    def test_roundtrip(self, tmp_path, capsys):
        sweep_path = tmp_path / "sweep.json"
        code = main([
            "sweep", "--out", str(sweep_path), "--sources", "R", "--fast", *SMALL,
        ])
        assert code == 0
        assert sweep_path.exists()
        capsys.readouterr()

        assert main(["report", "--sweep", str(sweep_path), "--artifact", "figure"]) == 0
        out = capsys.readouterr().out
        assert "TN" in out

        assert main(["report", "--sweep", str(sweep_path), "--artifact", "figure7"]) == 0
        out = capsys.readouterr().out
        assert "TTime" in out


class TestSuggest:
    def test_hashtag_for_text(self, capsys):
        code = main([
            "suggest", "--kind", "hashtag", "--text", "some words here", *SMALL,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "#" in out

    def test_followee_requires_user(self):
        with pytest.raises(SystemExit):
            main(["suggest", "--kind", "followee", *SMALL])
