"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

SMALL = ["--users", "16", "--ticks", "40", "--seed", "4",
         "--group-size", "3", "--min-retweets", "3"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--model", "WORD2VEC"])

    def test_sources_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--out", "x.json", "--sources", "Z"])


class TestGenerate:
    def test_prints_table2(self, capsys):
        assert main(["generate", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "MicroblogDataset" in out
        assert "Outgoing tweets (TR)" in out


class TestEvaluate:
    def test_reports_map_and_baselines(self, capsys):
        assert main(["evaluate", "--model", "TN", "--source", "R", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "MAP" in out and "RAN" in out and "CHR" in out

    def test_trace_out_writes_a_trace_and_log_json_streams_events(
        self, tmp_path, capsys
    ):
        trace_path = tmp_path / "trace.json"
        log_path = tmp_path / "events.jsonl"
        code = main([
            "evaluate", "--model", "TN", "--source", "R", *SMALL,
            "--trace-out", str(trace_path), "--log-json", str(log_path),
        ])
        assert code == 0
        assert "trace written to" in capsys.readouterr().out

        trace = json.loads(trace_path.read_text())
        assert trace["version"] == 1
        assert trace["manifest"]["command"] == "evaluate"
        assert trace["manifest"]["wall_seconds"] is not None
        assert trace["spans"][0]["name"] == "evaluate"
        assert "doc_cache.miss" in trace["metrics"]

        events = [json.loads(line) for line in log_path.read_text().splitlines()]
        assert any(e["event"] == "evaluate_done" for e in events)


class TestSweepAndReport:
    def test_roundtrip(self, tmp_path, capsys):
        sweep_path = tmp_path / "sweep.json"
        code = main([
            "sweep", "--out", str(sweep_path), "--sources", "R", "--fast", *SMALL,
        ])
        assert code == 0
        assert sweep_path.exists()
        capsys.readouterr()

        assert main(["report", "--sweep", str(sweep_path), "--artifact", "figure"]) == 0
        out = capsys.readouterr().out
        assert "TN" in out

        assert main(["report", "--sweep", str(sweep_path), "--artifact", "figure7"]) == 0
        out = capsys.readouterr().out
        assert "TTime" in out

    def test_traced_sweep_embeds_manifest_and_reports_breakdown(
        self, tmp_path, capsys
    ):
        sweep_path = tmp_path / "sweep.json"
        trace_path = tmp_path / "trace.json"
        code = main([
            "sweep", "--out", str(sweep_path), "--sources", "R", "--fast",
            *SMALL, "--trace-out", str(trace_path),
        ])
        assert code == 0
        capsys.readouterr()

        payload = json.loads(sweep_path.read_text())
        assert payload["manifest"]["command"] == "sweep"
        assert "TN" in payload["manifest"]["models"]
        assert payload["rows"][0]["phase_seconds"]

        assert main([
            "report", "--artifact", "timing-breakdown", "--trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "TTime (fit + profiles)" in out


def _strip_timings(rows):
    """Row values minus wall-clock fields, which vary run to run."""
    return [
        {k: v for k, v in row.items()
         if k not in ("training_seconds", "testing_seconds", "phase_seconds")}
        for row in rows
    ]


class TestParallelAndResume:
    def test_jobs_2_matches_serial(self, tmp_path, capsys):
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        base = ["sweep", "--sources", "R", "--fast", *SMALL]
        assert main([*base, "--out", str(serial_path)]) == 0
        assert main([*base, "--out", str(parallel_path), "--jobs", "2"]) == 0
        capsys.readouterr()

        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        assert _strip_timings(parallel["rows"]) == _strip_timings(serial["rows"])

    def test_journal_written_and_resume_restores(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        journal = tmp_path / "sweep.journal.jsonl"
        base = ["sweep", "--sources", "R", "--fast", *SMALL, "--out", str(out)]
        assert main([*base, "--journal"]) == 0
        assert journal.exists()
        first = json.loads(out.read_text())
        capsys.readouterr()

        # Tear the journal as a kill would, then resume. Cell records
        # interleave with heartbeat lines, so locate the cells first.
        lines = journal.read_text().splitlines()
        cell_indices = [
            i for i, line in enumerate(lines[1:], start=1)
            if json.loads(line).get("record") != "heartbeat"
        ]
        keep = cell_indices[2] + 1  # header + 3 cells (+ their heartbeats)
        journal.write_text(
            "\n".join(lines[: 1 + keep]) + "\n" + lines[cell_indices[3]][:25]
        )
        assert main([*base, "--resume"]) == 0
        captured = capsys.readouterr().out
        assert "resuming: 3 cells restored" in captured
        resumed = json.loads(out.read_text())
        assert _strip_timings(resumed["rows"]) == _strip_timings(first["rows"])


class TestMonitorAndExport:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        """One traced, journaled, event-logged sweep to observe."""
        base = tmp_path_factory.mktemp("observe")
        out = base / "sweep.json"
        events = base / "events.jsonl"
        trace = base / "trace.json"
        code = main([
            "sweep", "--sources", "R", "--fast", *SMALL, "--out", str(out),
            "--journal", "--log-json", str(events), "--trace-out", str(trace),
        ])
        assert code == 0
        return {
            "journal": base / "sweep.journal.jsonl",
            "events": events,
            "trace": trace,
        }

    def test_monitor_snapshot_of_a_journal(self, artifacts, capsys):
        assert main(["monitor", str(artifacts["journal"]), "--snapshot"]) == 0
        out = capsys.readouterr().out
        assert "sweep done:" in out
        assert "eta" in out

    def test_monitor_snapshot_json_is_machine_readable(self, artifacts, capsys):
        code = main([
            "monitor", str(artifacts["journal"]), "--snapshot", "--json",
        ])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["finished"] is True
        assert snapshot["done"] == snapshot["total"] > 0
        assert "eta_seconds" in snapshot and "workers" in snapshot

    def test_monitor_snapshot_of_an_events_file(self, artifacts, capsys):
        code = main([
            "monitor", str(artifacts["events"]), "--snapshot", "--json",
        ])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["finished"] is True
        assert snapshot["done"] == snapshot["total"] > 0

    def test_monitor_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["monitor", str(tmp_path / "nope.jsonl"), "--snapshot"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_export_trace_prints_chrome_trace_json(self, artifacts, capsys):
        assert main(["export", "trace", "--trace", str(artifacts["trace"])]) == 0
        events = json.loads(capsys.readouterr().out)
        assert isinstance(events, list)
        assert any(e["ph"] == "X" and e["name"] == "sweep" for e in events)
        assert any(
            e["ph"] == "M" and e.get("args", {}).get("name") == "main"
            for e in events
        )

    def test_export_trace_out_writes_a_file(self, artifacts, tmp_path, capsys):
        out = tmp_path / "trace.chrome.json"
        code = main([
            "export", "trace", "--trace", str(artifacts["trace"]),
            "--out", str(out),
        ])
        assert code == 0
        assert "written to" in capsys.readouterr().out
        assert isinstance(json.loads(out.read_text()), list)

    def test_export_metrics_prometheus_exposition(self, artifacts, capsys):
        assert main(["export", "metrics", "--trace", str(artifacts["trace"])]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_sweep_cells_dispatched counter" in out
        assert "# TYPE repro_doc_cache_miss counter" in out

    def test_export_unreadable_trace_exits_2(self, tmp_path, capsys):
        assert main([
            "export", "trace", "--trace", str(tmp_path / "missing.json"),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_critical_path(self, artifacts, capsys):
        code = main([
            "report", "--artifact", "critical-path",
            "--trace", str(artifacts["trace"]), "--top", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "straggler cells" in out
        assert "parallel efficiency" in out


class TestQuietProgress:
    def test_quiet_drops_per_cell_lines(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main([
            "sweep", "--sources", "R", "--fast", *SMALL, "--out", str(out),
            "--progress", "--quiet",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "MAP=" not in captured.out  # verbose per-cell lines gone
        assert "\rcells " in captured.err  # the inline line remains
        assert "eta" in captured.err

    def test_progress_alone_keeps_per_cell_lines(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main([
            "sweep", "--sources", "R", "--fast", *SMALL, "--out", str(out),
            "--progress",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "MAP=" in captured.out
        assert "\rcells " in captured.err


class TestBench:
    @pytest.fixture(scope="class")
    def baseline_file(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("bench")
        code = main([
            "bench", "run", "--label", "seed", "--scale", "tiny",
            "--trials", "1", "--warmup", "0", "--out-dir", str(out_dir),
        ])
        assert code == 0
        return out_dir / "BENCH_seed.json"

    def test_run_writes_a_schema_valid_baseline(self, baseline_file):
        doc = json.loads(baseline_file.read_text())
        assert doc["version"] == 1 and doc["label"] == "seed"
        assert doc["manifest"]["command"] == "bench"
        for model in ("TN", "TNG", "LDA"):
            for source in ("R", "T", "TR"):
                assert f"{model}/{source}/total" in doc["phases"]
        for phase, metrics in doc["phases"].items():
            assert "wall_seconds" in metrics, phase
            assert "peak_rss_bytes" in metrics, phase

    def test_compare_against_itself_is_clean(self, baseline_file, capsys):
        code = main([
            "bench", "compare", str(baseline_file), str(baseline_file), "--gate",
        ])
        assert code == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_gate_flags_exactly_the_slowed_phase(
        self, baseline_file, tmp_path, capsys
    ):
        doc = json.loads(baseline_file.read_text())
        slowed = doc["phases"]["TN/R/fit"]["wall_seconds"]
        for key in ("median", "min", "max"):
            slowed[key] = slowed[key] * 10 + 1.0
        slowed["samples"] = [v * 10 + 1.0 for v in slowed["samples"]]
        slowed_path = tmp_path / "BENCH_slowed.json"
        slowed_path.write_text(json.dumps(doc))

        code = main([
            "bench", "compare", str(baseline_file), str(slowed_path),
            "--gate", "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        flagged = [
            (d["phase"], d["metric"]) for d in payload["deltas"]
            if d["classification"] == "regression"
        ]
        assert flagged == [("TN/R/fit", "wall_seconds")]

    def test_markdown_output(self, baseline_file, capsys):
        code = main([
            "bench", "compare", str(baseline_file), str(baseline_file),
            "--format", "markdown",
        ])
        assert code == 0
        assert capsys.readouterr().out.startswith("## bench compare")

    def test_schema_error_exits_2(self, baseline_file, tmp_path, capsys):
        broken = tmp_path / "BENCH_broken.json"
        broken.write_text("{\"version\": 99}")
        code = main(["bench", "compare", str(baseline_file), str(broken)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_profiled_evaluate_renders_resource_breakdown(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main([
            "evaluate", "--model", "TN", "--source", "R", *SMALL,
            "--trace-out", str(trace_path), "--profile-resources",
        ]) == 0
        capsys.readouterr()
        assert main([
            "report", "--artifact", "resource-breakdown", "--trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "resource breakdown" in out
        assert "peak RSS" in out and "--profile-resources" not in out


class TestProfile:
    @pytest.fixture(scope="class")
    def profile_file(self, tmp_path_factory):
        """One profiled evaluate run shared by the read-only tests."""
        out = tmp_path_factory.mktemp("profile") / "profile.json"
        code = main([
            "profile", "--out", str(out), "--",
            "evaluate", "--model", "TN", "--source", "R", *SMALL,
        ])
        assert code == 0
        return out

    def test_wrapper_writes_a_profile_and_prints_hotspots(
        self, profile_file, capsys
    ):
        capsys.readouterr()
        doc = json.loads(profile_file.read_text())
        assert doc["kind"] == "repro-profile"
        assert doc["samples"] > 0
        assert doc["wall_seconds"] > 0
        # The wrapper forces telemetry on, so samples carry span paths.
        phases = {tuple(s["phase"]) for s in doc["stacks"]}
        assert any(p and p[0] == "evaluate" for p in phases)

    def test_report_hotspots_renders_a_saved_profile(self, profile_file, capsys):
        code = main([
            "report", "--artifact", "hotspots",
            "--profile", str(profile_file), "--top", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hotspots (stack samples per function)" in out
        assert "phase evaluate" in out
        assert "self%" in out and "cum%" in out

    def test_export_speedscope_document(self, profile_file, capsys):
        code = main([
            "export", "profile", "--profile", str(profile_file),
            "--format", "speedscope",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        assert doc["profiles"] and doc["shared"]["frames"]

    def test_export_collapsed_stacks(self, profile_file, tmp_path, capsys):
        out = tmp_path / "profile.collapsed"
        code = main([
            "export", "profile", "--profile", str(profile_file),
            "--format", "collapsed", "--out", str(out),
        ])
        assert code == 0
        assert "written to" in capsys.readouterr().out
        lines = out.read_text().splitlines()
        assert lines
        # `phase;frames count` lines, flamegraph.pl-ready.
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_diff_of_a_profile_with_itself_is_quiet(self, profile_file, capsys):
        code = main([
            "profile", "diff", str(profile_file), str(profile_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile diff" in out
        assert "(no hotspot movement)" in out

    def test_diff_requires_two_paths(self):
        with pytest.raises(SystemExit):
            main(["profile", "diff", "only-one.json"])

    def test_unprofileable_command_is_rejected(self):
        with pytest.raises(SystemExit, match="cannot wrap"):
            main(["profile", "--", "monitor", "x.jsonl"])

    def test_missing_profile_exits_2(self, tmp_path, capsys):
        code = main([
            "export", "profile", "--profile", str(tmp_path / "missing.json"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_profiled_bench_writes_companion_and_counters(
        self, tmp_path, capsys
    ):
        # Satellite contract: a profiled bench run drops a
        # PROFILE_<label>.json companion next to the baseline, and the
        # baseline itself records the sampling rate and sampler cost.
        code = main([
            "profile", "--hz", "251", "--out", str(tmp_path / "p.json"), "--",
            "bench", "run", "--label", "pr", "--scale", "tiny",
            "--trials", "1", "--warmup", "0", "--out-dir", str(tmp_path),
        ])
        assert code == 0
        assert "profile companion written to" in capsys.readouterr().out

        baseline = json.loads((tmp_path / "BENCH_pr.json").read_text())
        assert baseline["config"]["profile_hz"] == 251.0
        assert baseline["manifest"]["extra"]["profile_hz"] == 251.0
        assert baseline["counters"]["profiler.samples"] > 0
        assert baseline["counters"]["profiler.dropped"] >= 0
        assert 0.0 <= baseline["counters"]["profiler.overhead_percent"] < 5.0

        companion = json.loads((tmp_path / "PROFILE_pr.json").read_text())
        assert companion["kind"] == "repro-profile"
        assert companion["hz"] == 251.0
        assert companion["wall_seconds"] > 0  # open window banked


class TestSuggest:
    def test_hashtag_for_text(self, capsys):
        code = main([
            "suggest", "--kind", "hashtag", "--text", "some words here", *SMALL,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "#" in out

    def test_followee_requires_user(self):
        with pytest.raises(SystemExit):
            main(["suggest", "--kind", "followee", *SMALL])
