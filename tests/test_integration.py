"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import pytest

from repro import (
    ExperimentPipeline,
    RepresentationSource,
    TokenNGramModel,
    UserType,
)
from repro.eval.metrics import map_over_users
from repro.eval.significance import wilcoxon_signed_rank
from repro.experiments.configs import ConfigGrid
from repro.experiments.runner import SweepRunner


@pytest.fixture(scope="module")
def pipeline(small_dataset):
    return ExperimentPipeline(small_dataset, seed=2, max_train_docs_per_user=80)


@pytest.fixture(scope="module")
def all_users(small_groups, pipeline):
    return pipeline.eligible_users(small_groups[UserType.ALL])


class TestHeadlineFindings:
    """The paper's qualitative conclusions must hold on synthetic data."""

    def test_content_model_beats_both_baselines(self, pipeline, all_users):
        model = TokenNGramModel(n=1, weighting="TF-IDF")
        result = pipeline.evaluate(model, RepresentationSource.R, all_users)
        chr_map = map_over_users(pipeline.evaluate_chronological(all_users))
        ran_map = map_over_users(pipeline.evaluate_random(all_users, iterations=200))
        assert result.map_score > ran_map
        assert result.map_score > chr_map

    def test_significance_machinery_on_real_comparison(self, pipeline, all_users):
        strong = pipeline.evaluate(
            TokenNGramModel(n=1, weighting="TF-IDF"),
            RepresentationSource.R, all_users,
        )
        ran = pipeline.evaluate_random(all_users, iterations=200)
        users = sorted(strong.per_user_ap)
        test = wilcoxon_signed_rank(
            [strong.per_user_ap[u] for u in users],
            [ran[u] for u in users],
        )
        assert test.significant(alpha=0.1)

    def test_retweet_source_is_informative(self, pipeline, all_users):
        """R should outperform F (follower tweets are noisy)."""
        model_r = pipeline.evaluate(
            TokenNGramModel(n=1, weighting="TF-IDF"),
            RepresentationSource.R, all_users,
        )
        model_f = pipeline.evaluate(
            TokenNGramModel(n=1, weighting="TF-IDF"),
            RepresentationSource.F, all_users,
        )
        assert model_r.map_score > model_f.map_score


class TestFullSweepSlice:
    def test_sweep_runs_all_model_families(self, small_dataset, small_groups):
        pipeline = ExperimentPipeline(
            small_dataset, seed=2, max_train_docs_per_user=40
        )
        runner = SweepRunner(pipeline, small_groups)
        grid = ConfigGrid(
            topic_scale=0.04, iteration_scale=0.005, infer_iterations=2,
            btm_max_biterms=5000,
        )
        configs = [grid.all_configurations()[m][0] for m in (
            "TN", "CN", "TNG", "CNG", "LDA", "LLDA", "BTM", "HDP", "HLDA",
        )]
        result = runner.run(configs, [RepresentationSource.R], groups=[UserType.ALL])
        assert len(result.models()) == 9
        for row in result.rows:
            assert 0.0 <= row.map_score <= 1.0
