"""The injector arms plans around stage checkpoints; faults really fire."""

from __future__ import annotations

import time

import pytest

from repro.core.stages import stage_checkpoint
from repro.errors import InjectedFaultError, ReproError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, maybe_armed


def plan_of(*specs: FaultSpec) -> FaultPlan:
    return FaultPlan(faults=tuple(specs))


class TestArming:
    def test_cell_fault_fires_on_arm(self):
        plan = plan_of(FaultSpec(kind="raise", stage="cell", model="TN"))
        with pytest.raises(InjectedFaultError, match="stage 'cell'"):
            with FaultInjector(plan).armed("TN", "R"):
                raise AssertionError("fault should fire before the body runs")

    def test_stage_fault_fires_at_checkpoint(self):
        plan = plan_of(FaultSpec(kind="raise", stage="fit"))
        with FaultInjector(plan).armed("TN", "R") as gate:
            stage_checkpoint("prepare")  # not the faulted stage
            with pytest.raises(InjectedFaultError, match="stage 'fit'"):
                stage_checkpoint("fit")
        assert gate.fired == [("fit", "raise")]

    def test_injected_fault_is_a_repro_error(self):
        plan = plan_of(FaultSpec(kind="raise"))
        with pytest.raises(ReproError):
            with FaultInjector(plan).armed("TN", "R"):
                pass

    def test_gate_uninstalled_after_scope(self):
        plan = plan_of(FaultSpec(kind="raise", stage="fit"))
        try:
            with FaultInjector(plan).armed("TN", "R"):
                stage_checkpoint("fit")
        except InjectedFaultError:
            pass
        stage_checkpoint("fit")  # no armed gate left behind

    def test_non_matching_cell_is_untouched(self):
        plan = plan_of(FaultSpec(kind="raise", stage="fit", model="BTM"))
        with FaultInjector(plan).armed("TN", "R") as gate:
            stage_checkpoint("fit")
        assert gate.fired == []

    def test_attempt_aware_flakiness(self):
        plan = plan_of(FaultSpec(kind="raise", stage="fit", times=1))
        with FaultInjector(plan).armed("TN", "R", attempt=1):
            with pytest.raises(InjectedFaultError):
                stage_checkpoint("fit")
        with FaultInjector(plan).armed("TN", "R", attempt=2):
            stage_checkpoint("fit")  # recovered


class TestFaultKinds:
    def test_hang_sleeps_for_the_spec_duration(self):
        plan = plan_of(FaultSpec(kind="hang", stage="fit", seconds=0.05))
        with FaultInjector(plan).armed("TN", "R") as gate:
            start = time.monotonic()
            stage_checkpoint("fit")
            elapsed = time.monotonic() - start
        assert elapsed >= 0.05
        assert gate.fired == [("fit", "hang")]

    def test_inflate_rss_allocates_and_releases(self):
        plan = plan_of(FaultSpec(kind="inflate_rss", stage="fit", mib=1))
        with FaultInjector(plan).armed("TN", "R") as gate:
            stage_checkpoint("fit")
        assert gate.fired == [("fit", "inflate_rss")]


class TestMaybeArmed:
    def test_none_plan_is_a_noop(self):
        with maybe_armed(None, "TN", "R") as gate:
            stage_checkpoint("fit")
        assert gate is None

    def test_empty_plan_is_a_noop(self):
        with maybe_armed(FaultPlan(), "TN", "R") as gate:
            stage_checkpoint("fit")
        assert gate is None

    def test_real_plan_arms(self):
        plan = plan_of(FaultSpec(kind="raise", stage="fit"))
        with maybe_armed(plan, "TN", "R") as gate:
            with pytest.raises(InjectedFaultError):
                stage_checkpoint("fit")
        assert gate is not None and gate.fired
