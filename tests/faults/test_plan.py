"""Fault plans: validation, matching, determinism, (de)serialisation."""

from __future__ import annotations

import json

import pytest

from repro.errors import PersistenceError, ValidationError
from repro.faults import FAULT_PLAN_ENV, FaultPlan, FaultSpec


class TestFaultSpecValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValidationError, match="unknown fault kind"):
            FaultSpec(kind="explode")

    def test_rejects_unknown_stage(self):
        with pytest.raises(ValidationError, match="unknown fault stage"):
            FaultSpec(kind="raise", stage="shuffle")

    def test_rejects_bad_times_and_probability(self):
        with pytest.raises(ValidationError):
            FaultSpec(kind="raise", times=0)
        with pytest.raises(ValidationError):
            FaultSpec(kind="raise", probability=1.5)

    def test_validation_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="nope")


class TestMatching:
    def test_none_fields_match_anything(self):
        spec = FaultSpec(kind="raise", stage="fit")
        assert spec.matches("fit", "TN", "R", "{}", attempt=1)
        assert spec.matches("fit", "BTM", "E", '{"n": 2}', attempt=9)

    def test_model_source_params_restrict(self):
        spec = FaultSpec(kind="raise", stage="fit", model="TN", source="R")
        assert spec.matches("fit", "TN", "R", "{}", 1)
        assert not spec.matches("fit", "TN", "E", "{}", 1)
        assert not spec.matches("fit", "BTM", "R", "{}", 1)
        assert not spec.matches("rank", "TN", "R", "{}", 1)

    def test_times_bounds_faulted_attempts(self):
        flaky = FaultSpec(kind="raise", times=2)
        assert flaky.matches("cell", "TN", "R", "{}", attempt=1)
        assert flaky.matches("cell", "TN", "R", "{}", attempt=2)
        assert not flaky.matches("cell", "TN", "R", "{}", attempt=3)

    def test_times_none_faults_every_attempt(self):
        always = FaultSpec(kind="raise")
        assert all(
            always.matches("cell", "TN", "R", "{}", attempt=k) for k in range(1, 10)
        )


class TestShouldFire:
    def test_probability_sampling_is_deterministic(self):
        spec = FaultSpec(kind="raise", stage="fit", probability=0.5)
        plan = FaultPlan(faults=(spec,), seed=3)
        decisions = [
            plan.should_fire(spec, "fit", "TN", "R", f'{{"n": {i}}}', 1)
            for i in range(50)
        ]
        again = [
            plan.should_fire(spec, "fit", "TN", "R", f'{{"n": {i}}}', 1)
            for i in range(50)
        ]
        assert decisions == again
        assert True in decisions and False in decisions

    def test_seed_changes_the_sampled_subset(self):
        spec = FaultSpec(kind="raise", stage="fit", probability=0.5)
        sites = [("fit", "TN", "R", f'{{"n": {i}}}', 1) for i in range(50)]
        a = [FaultPlan((spec,), seed=0).should_fire(spec, *s) for s in sites]
        b = [FaultPlan((spec,), seed=1).should_fire(spec, *s) for s in sites]
        assert a != b


class TestSerialisation:
    def test_round_trip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="crash", stage="fit", model="TN", exit_code=99),
                FaultSpec(kind="hang", stage="rank", seconds=120.0),
                FaultSpec(kind="raise", times=2, probability=0.25),
            ),
            seed=7,
        )
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_defaults_omitted_from_json(self):
        payload = FaultSpec(kind="raise").to_dict()
        assert payload == {"kind": "raise", "stage": "cell"}

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown fault spec field"):
            FaultSpec.from_dict({"kind": "raise", "surprise": True})

    def test_rejects_bad_json_and_versions(self):
        with pytest.raises(PersistenceError, match="not valid JSON"):
            FaultPlan.loads("{nope")
        with pytest.raises(PersistenceError, match="version"):
            FaultPlan.loads('{"version": 99, "faults": []}')

    def test_save_load(self, tmp_path):
        plan = FaultPlan(faults=(FaultSpec(kind="raise", stage="profiles"),))
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="not found"):
            FaultPlan.load(tmp_path / "nope.json")


class TestParseAndEnv:
    def test_parse_inline_json(self):
        plan = FaultPlan.parse('{"version": 1, "faults": [{"kind": "raise"}]}')
        assert plan.faults[0].kind == "raise"

    def test_parse_path(self, tmp_path):
        path = FaultPlan(faults=(FaultSpec(kind="hang"),)).save(tmp_path / "p.json")
        assert FaultPlan.parse(str(path)).faults[0].kind == "hang"

    def test_from_env_absent_is_none(self):
        assert FaultPlan.from_env(environ={}) is None

    def test_from_env_inline(self):
        environ = {
            FAULT_PLAN_ENV: json.dumps(
                {"version": 1, "faults": [{"kind": "raise", "stage": "fit"}]}
            )
        }
        plan = FaultPlan.from_env(environ=environ)
        assert plan is not None and plan.faults[0].stage == "fit"

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(faults=(FaultSpec(kind="raise"),))
