"""Tests for the incremental ProfileState protocol across model families.

The contract under test (``repro.models.base.ProfileState``): any
chunking of ``update`` calls yields the same ``value()`` as one batch
call, fold order is pinned to non-decreasing ``(timestamp, tweet_id)``
keys, and ``decayed`` re-weights the retained history without touching
the state.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.temporal import TemporalWeighting
from repro.errors import ConfigurationError, ValidationError
from repro.models import (
    CharacterNGramGraphModel,
    CharacterNGramModel,
    LdaModel,
    TokenNGramGraphModel,
    TokenNGramModel,
)
from repro.models.base import TextDoc

CORPUS = [
    "the cat sat on the mat",
    "the dog chased the cat",
    "a bird flew over the mat",
    "the cat and the dog played",
    "rain fell on the quiet town",
    "the town woke to bird song",
    "dogs and cats share the town",
    "a quiet rain chased the birds",
]


def doc(text: str) -> TextDoc:
    return TextDoc.from_tokens(tuple(text.split()))


DOCS = [doc(t) for t in CORPUS]
KEYS = [(tick, tweet_id) for tick, tweet_id in zip(range(8), range(100, 108))]


def delta(a, b) -> float:
    """Max absolute difference between two profiles of the same family."""
    if isinstance(a, np.ndarray):
        return float(np.max(np.abs(a - b))) if a.shape == b.shape else float("inf")
    if hasattr(a, "edges"):
        a, b = dict(a.edges()), dict(b.edges())
    joint = set(a) | set(b)
    return max((abs(a.get(g, 0.0) - b.get(g, 0.0)) for g in joint), default=0.0)


def fitted_models():
    """One model per family, small enough for unit tests, fitted."""
    lda = LdaModel(
        n_topics=4, pooling="NP", iterations=15, infer_iterations=5, seed=3
    )
    lda.deterministic_inference = True
    models = [
        TokenNGramModel(n=1, weighting="TF", aggregation="sum"),
        TokenNGramModel(n=1, weighting="TF", aggregation="centroid"),
        CharacterNGramModel(n=3, weighting="TF", aggregation="sum"),
        TokenNGramGraphModel(n=2),
        CharacterNGramGraphModel(n=3),
        lda,
    ]
    return [m.fit(DOCS) for m in models]


class TestChunkingParity:
    """Any chunking == one batch call (bit-identical per family)."""

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 8])
    def test_chunked_equals_batch(self, chunk_size):
        for model in fitted_models():
            batch = model.init_profile().update(DOCS, keys=KEYS).value()
            state = model.init_profile()
            for start in range(0, len(DOCS), chunk_size):
                stop = start + chunk_size
                state.update(DOCS[start:stop], keys=KEYS[start:stop])
            assert delta(batch, state.value()) == 0.0, model.name

    def test_value_is_repeatable_and_non_destructive(self):
        for model in fitted_models():
            state = model.init_profile().update(DOCS[:4], keys=KEYS[:4])
            first = state.value()
            assert delta(first, state.value()) == 0.0
            state.update(DOCS[4:], keys=KEYS[4:])
            batch = model.init_profile().update(DOCS, keys=KEYS).value()
            assert delta(batch, state.value()) == 0.0

    def test_matches_build_user_model(self):
        for model in fitted_models():
            built = model.build_user_model(DOCS)
            folded = model.init_profile().update(DOCS, keys=KEYS).value()
            assert delta(built, folded) == 0.0, model.name

    @given(
        st.lists(
            st.integers(min_value=1, max_value=len(DOCS)),
            min_size=1,
            max_size=len(DOCS),
        )
    )
    def test_arbitrary_chunkings_bag_and_graph(self, sizes):
        """Property: every chunk-size sequence reproduces the batch fold."""
        models = [
            TokenNGramModel(n=1, weighting="TF", aggregation="centroid").fit(DOCS),
            TokenNGramGraphModel(n=2).fit(DOCS),
        ]
        for model in models:
            batch = model.init_profile().update(DOCS, keys=KEYS).value()
            state = model.init_profile()
            start = 0
            for size in sizes:
                if start >= len(DOCS):
                    break
                stop = min(start + size, len(DOCS))
                state.update(DOCS[start:stop], keys=KEYS[start:stop])
                start = stop
            state.update(DOCS[start:], keys=KEYS[start:])
            assert delta(batch, state.value()) == 0.0


class TestFoldOrder:
    def test_chunks_are_sorted_by_key(self):
        model = TokenNGramGraphModel(n=2).fit(DOCS)
        shuffled = [3, 0, 2, 1, 5, 4, 7, 6]
        state = model.init_profile().update(
            [DOCS[i] for i in shuffled], keys=[KEYS[i] for i in shuffled]
        )
        batch = model.init_profile().update(DOCS, keys=KEYS).value()
        assert delta(batch, state.value()) == 0.0

    def test_out_of_order_chunks_rejected(self):
        for model in fitted_models():
            state = model.init_profile().update(DOCS[4:], keys=KEYS[4:])
            with pytest.raises(ValidationError):
                state.update(DOCS[:4], keys=KEYS[:4])

    def test_mismatched_keys_length_rejected(self):
        model = TokenNGramModel(n=1).fit(DOCS)
        with pytest.raises(ValidationError):
            model.init_profile().update(DOCS, keys=KEYS[:-1])

    def test_graph_merge_order_matters(self):
        """Regression: the graph update operator is not commutative.

        If this ever passes with equal graphs, the 1/i learning-factor
        sequence has changed and the canonical fold order is no longer
        load-bearing -- the out-of-order guard would be dead weight.
        """
        model = TokenNGramGraphModel(n=2).fit(DOCS)
        forward = model.init_profile().update(DOCS, keys=KEYS).value()
        backward = (
            model.init_profile()
            .update(list(reversed(DOCS)), keys=KEYS)
            .value()
        )
        assert delta(forward, backward) > 0.0

    def test_positional_order_without_keys(self):
        model = TokenNGramModel(n=1, aggregation="centroid").fit(DOCS)
        batch = model.init_profile().update(DOCS).value()
        state = model.init_profile()
        for d in DOCS:
            state.update([d])
        assert delta(batch, state.value()) == 0.0


class TestDecay:
    def test_all_ones_weights_reproduce_value(self):
        for model in fitted_models():
            state = model.init_profile().update(DOCS, keys=KEYS)
            assert delta(state.value(), state.decayed(lambda key: 1.0)) == 0.0, (
                model.name
            )

    def test_window_drops_old_documents(self):
        """A window covering only the tail equals folding only the tail."""
        model = TokenNGramModel(n=1, weighting="TF", aggregation="sum").fit(DOCS)
        state = model.init_profile().update(DOCS, keys=KEYS)
        window = TemporalWeighting(kind="window", window=3)
        tail_only = model.init_profile().update(DOCS[4:], keys=KEYS[4:]).value()
        assert delta(tail_only, state.decayed(window.weight_fn(KEYS[-1][0]))) == 0.0

    def test_window_drops_old_graph_documents(self):
        model = TokenNGramGraphModel(n=2).fit(DOCS)
        state = model.init_profile().update(DOCS, keys=KEYS)
        window = TemporalWeighting(kind="window", window=3)
        tail_only = model.init_profile().update(DOCS[4:], keys=KEYS[4:]).value()
        assert delta(tail_only, state.decayed(window.weight_fn(KEYS[-1][0]))) == 0.0

    def test_half_life_scales_sum_profiles(self):
        """For sum aggregation the decayed profile is the weighted sum."""
        model = TokenNGramModel(n=1, weighting="TF", aggregation="sum").fit(DOCS)
        state = model.init_profile().update(DOCS, keys=KEYS)
        decay = TemporalWeighting(kind="half-life", half_life=2)
        reference = KEYS[-1][0]
        expected: dict[str, float] = {}
        for (tick, _), d in zip(KEYS, DOCS):
            weight = decay.weight(reference, tick)
            for g, w in model.represent(d).items():
                expected[g] = expected.get(g, 0.0) + weight * w
        got = state.decayed(decay.weight_fn(reference))
        assert delta(expected, got) == pytest.approx(0.0, abs=1e-12)

    def test_decayed_leaves_state_unchanged(self):
        for model in fitted_models():
            state = model.init_profile().update(DOCS, keys=KEYS)
            before = state.value()
            state.decayed(TemporalWeighting(kind="half-life", half_life=1).weight_fn(99))
            assert delta(before, state.value()) == 0.0


class TestLabels:
    def test_rocchio_replays_batch_aggregation(self):
        model = TokenNGramModel(
            n=1, weighting="TF", aggregation="rocchio", similarity="CS"
        ).fit(DOCS)
        labels = [1, 1, 0, 1, 0, 1, 0, 1]
        batch = model.build_user_model(DOCS, labels=labels)
        state = model.init_profile()
        for i in range(0, len(DOCS), 3):
            state.update(DOCS[i : i + 3], labels=labels[i : i + 3], keys=KEYS[i : i + 3])
        assert delta(batch, state.value()) == 0.0

    def test_rocchio_without_labels_rejected(self):
        model = TokenNGramModel(
            n=1, weighting="TF", aggregation="rocchio", similarity="CS"
        ).fit(DOCS)
        state = model.init_profile().update(DOCS, keys=KEYS)
        with pytest.raises(ConfigurationError):
            state.value()

    def test_graph_ignores_negative_documents(self):
        model = TokenNGramGraphModel(n=2).fit(DOCS)
        labels = [1, 0, 1, 0, 1, 0, 1, 0]
        positives = [d for d, label in zip(DOCS, labels) if label == 1]
        positive_keys = [k for k, label in zip(KEYS, labels) if label == 1]
        expected = model.init_profile().update(positives, keys=positive_keys).value()
        got = model.init_profile().update(DOCS, labels=labels, keys=KEYS).value()
        assert delta(expected, got) == 0.0

    def test_labels_length_mismatch_rejected(self):
        model = TokenNGramModel(n=1).fit(DOCS)
        with pytest.raises(ValidationError):
            model.init_profile().update(DOCS, labels=[1, 0])


class TestCount:
    def test_count_tracks_folded_documents(self):
        model = TokenNGramModel(n=1).fit(DOCS)
        state = model.init_profile()
        assert state.count == 0
        state.update(DOCS[:3], keys=KEYS[:3])
        assert state.count == 3
        state.update(DOCS[3:], keys=KEYS[3:])
        assert state.count == len(DOCS)
