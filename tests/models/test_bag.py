"""Tests for the TN and CN bag models."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.models.aggregation import AggregationFunction
from repro.models.bag import CharacterNGramModel, TokenNGramModel
from repro.models.base import TextDoc
from repro.models.similarity import VectorSimilarity
from repro.models.weighting import WeightingScheme


def doc(text: str) -> TextDoc:
    return TextDoc.from_tokens(tuple(text.split()))


class TestConfigurationValidity:
    """The paper's invalid-combination matrix (Section 4)."""

    def test_js_requires_bf(self):
        with pytest.raises(ConfigurationError):
            TokenNGramModel(n=1, weighting="TF", aggregation="sum", similarity="JS")

    def test_gjs_rejects_bf(self):
        with pytest.raises(ConfigurationError):
            TokenNGramModel(n=1, weighting="BF", aggregation="sum", similarity="GJS")

    def test_cn_rejects_tf_idf(self):
        with pytest.raises(ConfigurationError):
            CharacterNGramModel(n=2, weighting="TF-IDF")

    def test_tn_allows_tf_idf(self):
        TokenNGramModel(n=1, weighting="TF-IDF")

    def test_bf_requires_sum(self):
        with pytest.raises(ConfigurationError):
            TokenNGramModel(n=1, weighting="BF", aggregation="centroid", similarity="CS")

    def test_rocchio_requires_cosine(self):
        with pytest.raises(ConfigurationError):
            TokenNGramModel(n=1, weighting="TF", aggregation="rocchio", similarity="GJS")

    def test_rocchio_rejects_bf(self):
        with pytest.raises(ConfigurationError):
            TokenNGramModel(n=1, weighting="BF", aggregation="rocchio", similarity="CS")

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            TokenNGramModel(n=0)

    def test_accepts_enum_and_string(self):
        a = TokenNGramModel(n=1, weighting=WeightingScheme.TF)
        b = TokenNGramModel(n=1, weighting="TF")
        assert a.weighting is b.weighting


class TestRepresent:
    def test_tn_unigram_tf(self):
        model = TokenNGramModel(n=1, weighting="TF")
        vec = model.represent(doc("a a b"))
        assert math.isclose(vec["a"], 2 / 3)
        assert math.isclose(vec["b"], 1 / 3)

    def test_tn_bigrams(self):
        model = TokenNGramModel(n=2, weighting="BF", aggregation="sum")
        vec = model.represent(doc("bob sues jim"))
        assert set(vec) == {"bob sues", "sues jim"}

    def test_cn_char_grams(self):
        model = CharacterNGramModel(n=2, weighting="BF", aggregation="sum")
        vec = model.represent(TextDoc(text="abc", tokens=("abc",)))
        assert set(vec) == {"ab", "bc"}

    def test_tf_idf_requires_fit(self):
        model = TokenNGramModel(n=1, weighting="TF-IDF")
        with pytest.raises(NotFittedError):
            model.represent(doc("hello"))

    def test_tf_idf_downweights_common_terms(self, tiny_corpus):
        model = TokenNGramModel(n=1, weighting="TF-IDF").fit(tiny_corpus)
        vec = model.represent(doc("the rallies"))
        assert vec["rallies"] > vec["the"]


class TestUserModel:
    def test_sum_aggregation(self):
        model = TokenNGramModel(n=1, weighting="BF", aggregation="sum", similarity="CS")
        um = model.build_user_model([doc("a b"), doc("a c")])
        assert um == {"a": 2.0, "b": 1.0, "c": 1.0}

    def test_rocchio_uses_labels(self):
        model = TokenNGramModel(n=1, weighting="TF", aggregation="rocchio")
        um = model.build_user_model([doc("good"), doc("bad")], labels=[1, 0])
        assert um["good"] > 0 > um["bad"]

    def test_rocchio_without_labels_raises(self):
        model = TokenNGramModel(n=1, weighting="TF", aggregation="rocchio")
        with pytest.raises(ConfigurationError):
            model.build_user_model([doc("x")])


class TestScoring:
    def test_relevant_doc_scores_higher(self, tiny_corpus):
        model = TokenNGramModel(n=1, weighting="TF").fit(tiny_corpus)
        um = model.build_user_model([doc("cats dogs pets"), doc("cat mat")])
        on_topic = model.score(um, model.represent(doc("cats and dogs")))
        off_topic = model.score(um, model.represent(doc("stock market ticker")))
        assert on_topic > off_topic

    def test_jaccard_path(self):
        model = TokenNGramModel(n=1, weighting="BF", aggregation="sum", similarity="JS")
        um = model.build_user_model([doc("a b")])
        assert math.isclose(model.score(um, model.represent(doc("b c"))), 1 / 3)

    def test_describe_lists_configuration(self):
        model = TokenNGramModel(
            n=2, weighting="TF", aggregation="centroid", similarity="GJS"
        )
        info = model.describe()
        assert info == {
            "model": "TN", "n": 2, "weighting": "TF",
            "aggregation": "centroid", "similarity": "GJS",
        }

    def test_fit_returns_self(self, tiny_corpus):
        model = TokenNGramModel(n=1, weighting="TF")
        assert model.fit(tiny_corpus) is model


class TestCharacterModelNoise:
    def test_misspelling_still_matches(self):
        # The character model's raison d'etre (Challenge C2).
        model = CharacterNGramModel(n=2, weighting="TF")
        um = model.build_user_model([TextDoc(text="tweet storm", tokens=("tweet", "storm"))])
        clean = model.score(um, model.represent(TextDoc("tweet", ("tweet",))))
        typo = model.score(um, model.represent(TextDoc("twete", ("twete",))))
        other = model.score(um, model.represent(TextDoc("zzzz", ("zzzz",))))
        assert typo > other
        assert clean >= typo
