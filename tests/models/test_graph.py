"""Tests for n-gram graphs and the TNG/CNG models."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.models.base import TextDoc
from repro.models.graph import (
    CharacterNGramGraphModel,
    NGramGraph,
    TokenNGramGraphModel,
    containment_similarity,
    normalized_value_similarity,
    value_similarity,
)


def doc(text: str) -> TextDoc:
    return TextDoc.from_tokens(tuple(text.split()))


class TestGraphConstruction:
    def test_window_one_connects_adjacent(self):
        g = NGramGraph.from_ngrams(["a", "b", "c"], window=1)
        assert g.weight("a", "b") == 1.0
        assert g.weight("b", "c") == 1.0
        assert g.weight("a", "c") == 0.0

    def test_window_two_connects_skip_pairs(self):
        g = NGramGraph.from_ngrams(["a", "b", "c"], window=2)
        assert g.weight("a", "c") == 1.0

    def test_weights_count_cooccurrences(self):
        g = NGramGraph.from_ngrams(["a", "b", "a", "b"], window=1)
        assert g.weight("a", "b") == 3.0

    def test_undirected(self):
        g = NGramGraph.from_ngrams(["x", "y"], window=1)
        assert g.weight("x", "y") == g.weight("y", "x")

    def test_empty_sequence(self):
        assert len(NGramGraph.from_ngrams([], window=1)) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            NGramGraph.from_ngrams(["a"], window=0)

    def test_size_is_edge_count(self):
        g = NGramGraph.from_ngrams(["a", "b", "c"], window=1)
        assert len(g) == 2

    def test_contains_edge(self):
        g = NGramGraph.from_ngrams(["a", "b"], window=1)
        assert ("a", "b") in g
        assert ("b", "a") in g  # canonical form
        assert ("a", "z") not in g

    def test_equality(self):
        g1 = NGramGraph.from_ngrams(["a", "b"], window=1)
        g2 = NGramGraph.from_ngrams(["a", "b"], window=1)
        assert g1 == g2


class TestUpdateOperator:
    def test_learning_factor_one_adopts_other(self):
        g1 = NGramGraph({("a", "b"): 2.0})
        g2 = NGramGraph({("a", "b"): 4.0})
        merged = g1.updated(g2, learning_factor=1.0)
        assert merged.weight("a", "b") == 4.0

    def test_half_factor_averages(self):
        g1 = NGramGraph({("a", "b"): 2.0})
        g2 = NGramGraph({("a", "b"): 4.0})
        merged = g1.updated(g2, learning_factor=0.5)
        assert merged.weight("a", "b") == 3.0

    def test_new_edges_adopted_scaled(self):
        g1 = NGramGraph({("a", "b"): 1.0})
        g2 = NGramGraph({("c", "d"): 1.0})
        merged = g1.updated(g2, learning_factor=0.5)
        assert merged.weight("a", "b") == 1.0
        assert merged.weight("c", "d") == 0.5

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            NGramGraph().updated(NGramGraph(), learning_factor=0.0)

    def test_merge_all_running_average_identical_graphs(self):
        g = NGramGraph({("a", "b"): 3.0})
        merged = NGramGraph.merge_all([g, g, g])
        assert math.isclose(merged.weight("a", "b"), 3.0)

    def test_merge_all_empty(self):
        assert len(NGramGraph.merge_all([])) == 0

    def test_merge_preserves_edge_union(self):
        g1 = NGramGraph({("a", "b"): 1.0})
        g2 = NGramGraph({("c", "d"): 1.0})
        merged = NGramGraph.merge_all([g1, g2])
        assert ("a", "b") in merged and ("c", "d") in merged


class TestSimilarities:
    g_abc = NGramGraph.from_ngrams(["a", "b", "c"], window=1)  # edges ab, bc
    g_ab = NGramGraph.from_ngrams(["a", "b"], window=1)  # edge ab
    g_xy = NGramGraph.from_ngrams(["x", "y"], window=1)

    def test_containment_full(self):
        assert containment_similarity(self.g_ab, self.g_abc) == 1.0

    def test_containment_disjoint(self):
        assert containment_similarity(self.g_ab, self.g_xy) == 0.0

    def test_containment_ignores_weights(self):
        heavy = NGramGraph({("a", "b"): 99.0})
        assert containment_similarity(heavy, self.g_ab) == 1.0

    def test_value_similarity_weight_aware(self):
        half = NGramGraph({("a", "b"): 0.5})
        # min/max ratio = 0.5, normalised by max size (1) -> 0.5
        assert math.isclose(value_similarity(half, self.g_ab), 0.5)

    def test_value_normalised_by_larger(self):
        # shared edge ab (ratio 1), sizes 1 and 2 -> 1/2
        assert math.isclose(value_similarity(self.g_ab, self.g_abc), 0.5)

    def test_ns_normalised_by_smaller(self):
        assert math.isclose(normalized_value_similarity(self.g_ab, self.g_abc), 1.0)

    def test_identical_graphs_max_similarity(self):
        for fn in (containment_similarity, value_similarity, normalized_value_similarity):
            assert math.isclose(fn(self.g_abc, self.g_abc), 1.0)

    def test_empty_graph_scores_zero(self):
        empty = NGramGraph()
        for fn in (containment_similarity, value_similarity, normalized_value_similarity):
            assert fn(empty, self.g_ab) == 0.0

    @given(st.lists(st.sampled_from("abcd"), min_size=2, max_size=12),
           st.lists(st.sampled_from("abcd"), min_size=2, max_size=12))
    def test_similarities_symmetric_and_bounded(self, s1, s2):
        g1 = NGramGraph.from_ngrams(s1, window=2)
        g2 = NGramGraph.from_ngrams(s2, window=2)
        for fn in (containment_similarity, value_similarity, normalized_value_similarity):
            v = fn(g1, g2)
            assert math.isclose(v, fn(g2, g1), abs_tol=1e-12)
            assert 0.0 <= v <= 1.0 + 1e-9


class TestGraphModels:
    def test_tng_window_equals_n(self):
        model = TokenNGramGraphModel(n=2)
        g = model.represent(doc("a b c d"))
        # 2-grams: "a b","b c","c d"; window 2 connects all pairs within 2
        assert ("a b", "b c") in g
        assert ("a b", "c d") in g

    def test_cng_works_on_text(self):
        model = CharacterNGramGraphModel(n=2)
        g = model.represent(TextDoc(text="abcd", tokens=("abcd",)))
        assert ("ab", "bc") in g

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            TokenNGramGraphModel(n=0)

    def test_user_model_merges(self):
        model = TokenNGramGraphModel(n=1)
        um = model.build_user_model([doc("a b"), doc("c d")])
        assert ("a", "b") in um and ("c", "d") in um

    def test_labels_filter_to_positives(self):
        model = TokenNGramGraphModel(n=1)
        um = model.build_user_model([doc("a b"), doc("c d")], labels=[1, 0])
        assert ("a", "b") in um
        assert ("c", "d") not in um

    def test_scoring_separates_topics(self):
        model = TokenNGramGraphModel(n=1)
        um = model.build_user_model([doc("cats chase mice"), doc("cats chase birds")])
        on_topic = model.score(um, model.represent(doc("cats chase rabbits")))
        off_topic = model.score(um, model.represent(doc("stock market news")))
        assert on_topic > off_topic

    def test_describe(self):
        model = TokenNGramGraphModel(n=3, similarity="NS")
        assert model.describe() == {"model": "TNG", "n": 3, "similarity": "NS"}

    def test_fit_is_noop(self, tiny_corpus):
        model = CharacterNGramGraphModel(n=3)
        assert model.fit(tiny_corpus) is model
