"""Tests for BF / TF / TF-IDF weighting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NotFittedError
from repro.models.weighting import IdfTable, bf_vector, tf_idf_vector, tf_vector


class TestBooleanFrequency:
    def test_binary_weights(self):
        vec = bf_vector(["a", "b", "a"])
        assert vec == {"a": 1.0, "b": 1.0}

    def test_empty(self):
        assert bf_vector([]) == {}


class TestTermFrequency:
    def test_normalised_by_length(self):
        vec = tf_vector(["a", "a", "b", "c"])
        assert vec == {"a": 0.5, "b": 0.25, "c": 0.25}

    def test_weights_sum_to_one(self):
        vec = tf_vector(["x", "y", "y", "z"])
        assert math.isclose(sum(sorted(vec.values())), 1.0)

    def test_empty(self):
        assert tf_vector([]) == {}

    @given(st.lists(st.sampled_from("abc"), min_size=1, max_size=20))
    def test_sum_is_one_property(self, grams):
        assert math.isclose(sum(sorted(tf_vector(grams).values())), 1.0)


class TestIdfTable:
    @pytest.fixture()
    def table(self) -> IdfTable:
        return IdfTable().fit([["a", "b"], ["a", "c"], ["a"], ["d"]])

    def test_paper_formula(self, table):
        # idf(t) = log(|D| / (df(t) + 1)); "a" occurs in 3 of 4 docs.
        assert math.isclose(table.idf("a"), math.log(4 / 4))
        assert math.isclose(table.idf("b"), math.log(4 / 2))

    def test_unseen_gets_max_idf(self, table):
        assert math.isclose(table.idf("zzz"), math.log(4 / 1))

    def test_rare_weighs_more_than_common(self, table):
        assert table.idf("b") > table.idf("a")

    def test_df_counts_documents_not_occurrences(self):
        table = IdfTable().fit([["a", "a", "a"], ["b"]])
        assert math.isclose(table.idf("a"), math.log(2 / 2))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            IdfTable().idf("a")
        with pytest.raises(NotFittedError):
            _ = IdfTable().n_docs

    def test_n_docs(self, table):
        assert table.n_docs == 4

    def test_contains(self, table):
        assert "a" in table
        assert "zzz" not in table

    def test_empty_corpus_idf_zero(self):
        table = IdfTable().fit([])
        assert table.idf("anything") == 0.0


class TestTfIdf:
    def test_combines_tf_and_idf(self):
        table = IdfTable().fit([["a"], ["b"], ["b"]])
        vec = tf_idf_vector(["a", "b"], table)
        assert math.isclose(vec["a"], 0.5 * math.log(3 / 2))
        assert math.isclose(vec["b"], 0.5 * math.log(3 / 3))

    def test_empty_document(self):
        table = IdfTable().fit([["a"]])
        assert tf_idf_vector([], table) == {}
