"""Tests for sum / centroid / Rocchio aggregation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.models.aggregation import (
    AggregationFunction,
    aggregate,
    centroid_aggregate,
    rocchio_aggregate,
    sum_aggregate,
)


class TestSum:
    def test_component_wise(self):
        result = sum_aggregate([{"a": 1.0, "b": 2.0}, {"a": 3.0, "c": 1.0}])
        assert result == {"a": 4.0, "b": 2.0, "c": 1.0}

    def test_empty_list(self):
        assert sum_aggregate([]) == {}


class TestCentroid:
    def test_normalises_before_averaging(self):
        # Two vectors with very different magnitudes contribute equally.
        result = centroid_aggregate([{"a": 100.0}, {"b": 1.0}])
        assert math.isclose(result["a"], 0.5)
        assert math.isclose(result["b"], 0.5)

    def test_single_vector_is_unit(self):
        result = centroid_aggregate([{"a": 3.0, "b": 4.0}])
        assert math.isclose(result["a"], 0.6)
        assert math.isclose(result["b"], 0.8)

    def test_zero_vector_contributes_nothing(self):
        result = centroid_aggregate([{"a": 1.0}, {}])
        assert math.isclose(result["a"], 0.5)

    def test_empty_list(self):
        assert centroid_aggregate([]) == {}

    @given(st.lists(
        st.dictionaries(st.sampled_from("ab"), st.floats(0.1, 5.0), min_size=1, max_size=2),
        min_size=1, max_size=6,
    ))
    def test_magnitude_bounded_by_one(self, vectors):
        result = centroid_aggregate(vectors)
        norm = math.sqrt(sum(w * w for w in result.values()))
        assert norm <= 1.0 + 1e-9


class TestRocchio:
    def test_positive_only_scaled_centroid(self):
        result = rocchio_aggregate([{"a": 1.0}], labels=[1], alpha=0.8, beta=0.2)
        assert math.isclose(result["a"], 0.8)

    def test_negatives_subtract(self):
        result = rocchio_aggregate(
            [{"a": 1.0}, {"a": 1.0}], labels=[1, 0], alpha=0.8, beta=0.2
        )
        assert math.isclose(result["a"], 0.8 - 0.2)

    def test_negative_only_terms_negative(self):
        result = rocchio_aggregate([{"a": 1.0}], labels=[0])
        assert result["a"] < 0

    def test_alpha_beta_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            rocchio_aggregate([{"a": 1.0}], labels=[1], alpha=0.9, beta=0.2)

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError):
            rocchio_aggregate([{"a": 1.0}], labels=[1, 0])

    def test_paper_defaults(self):
        # alpha = 0.8, beta = 0.2 (paper Section 4)
        result = rocchio_aggregate(
            [{"a": 1.0}, {"b": 1.0}], labels=[1, 0]
        )
        assert math.isclose(result["a"], 0.8)
        assert math.isclose(result["b"], -0.2)


class TestDispatch:
    def test_sum(self):
        assert aggregate(AggregationFunction.SUM, [{"a": 1.0}]) == {"a": 1.0}

    def test_centroid(self):
        assert aggregate(AggregationFunction.CENTROID, [{"a": 2.0}]) == {"a": 1.0}

    def test_rocchio_requires_labels(self):
        with pytest.raises(ConfigurationError):
            aggregate(AggregationFunction.ROCCHIO, [{"a": 1.0}])

    def test_rocchio_with_labels(self):
        result = aggregate(AggregationFunction.ROCCHIO, [{"a": 1.0}], labels=[1])
        assert math.isclose(result["a"], 0.8)
