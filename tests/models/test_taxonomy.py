"""Tests for the Figure 1 taxonomy registry."""

from __future__ import annotations

import pytest

from repro.models.taxonomy import (
    TAXONOMY,
    ContextCategory,
    facts_for,
    models_in_category,
)


class TestRegistry:
    def test_all_ten_models_present(self):
        assert set(TAXONOMY) == {
            "TN", "CN", "TNG", "CNG", "PLSA", "LDA", "LLDA", "BTM", "HDP", "HLDA",
        }

    def test_topic_models_are_context_agnostic(self):
        for name in ("PLSA", "LDA", "LLDA", "BTM", "HDP", "HLDA"):
            assert facts_for(name).category is ContextCategory.CONTEXT_AGNOSTIC

    def test_bag_models_are_local(self):
        for name in ("TN", "CN"):
            assert facts_for(name).category is ContextCategory.LOCAL_CONTEXT_AWARE

    def test_graph_models_are_global(self):
        for name in ("TNG", "CNG"):
            assert facts_for(name).category is ContextCategory.GLOBAL_CONTEXT_AWARE

    def test_nonparametric_models(self):
        nonparametric = {n for n, f in TAXONOMY.items() if f.nonparametric}
        assert nonparametric == {"HDP", "HLDA"}

    def test_character_based_subcategory_spans_bags_and_graphs(self):
        character = {n for n, f in TAXONOMY.items() if f.character_based}
        assert character == {"CN", "CNG"}

    def test_context_based_means_not_agnostic(self):
        for facts in TAXONOMY.values():
            assert facts.context_based == (
                facts.category is not ContextCategory.CONTEXT_AGNOSTIC
            )

    def test_topic_model_flag(self):
        assert facts_for("LDA").topic_model
        assert not facts_for("TN").topic_model

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            facts_for("WORD2VEC")

    def test_models_in_category(self):
        assert set(models_in_category(ContextCategory.GLOBAL_CONTEXT_AWARE)) == {
            "TNG", "CNG",
        }

    def test_categories_partition_registry(self):
        union = [
            name
            for category in ContextCategory
            for name in models_in_category(category)
        ]
        assert sorted(union) == sorted(TAXONOMY)
