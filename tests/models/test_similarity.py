"""Tests for CS / JS / GJS vector similarities."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.similarity import (
    VectorSimilarity,
    cosine_similarity,
    generalized_jaccard_similarity,
    jaccard_similarity,
    vector_similarity_function,
)

sparse_vectors = st.dictionaries(
    st.sampled_from("abcdef"), st.floats(0.0, 10.0, allow_nan=False), max_size=6
)


class TestCosine:
    def test_identical_vectors(self):
        v = {"a": 1.0, "b": 2.0}
        assert math.isclose(cosine_similarity(v, v), 1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_scale_invariant(self):
        u = {"a": 1.0, "b": 3.0}
        v = {"a": 10.0, "b": 30.0}
        assert math.isclose(cosine_similarity(u, v), 1.0)

    def test_known_value(self):
        # cos between (1,1) and (1,0) is 1/sqrt(2)
        assert math.isclose(
            cosine_similarity({"a": 1.0, "b": 1.0}, {"a": 1.0}), 1 / math.sqrt(2)
        )

    def test_empty_vector_scores_zero(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0
        assert cosine_similarity({}, {}) == 0.0

    @given(sparse_vectors, sparse_vectors)
    def test_symmetric_and_bounded(self, u, v):
        s1 = cosine_similarity(u, v)
        s2 = cosine_similarity(v, u)
        assert math.isclose(s1, s2, abs_tol=1e-12)
        assert -1e-9 <= s1 <= 1.0 + 1e-9


class TestJaccard:
    def test_identical_supports(self):
        assert jaccard_similarity({"a": 1.0, "b": 1.0}, {"a": 9.0, "b": 0.5}) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_partial_overlap(self):
        assert math.isclose(
            jaccard_similarity({"a": 1.0, "b": 1.0}, {"b": 1.0, "c": 1.0}), 1 / 3
        )

    def test_zero_weights_do_not_count(self):
        assert jaccard_similarity({"a": 0.0}, {"a": 1.0}) == 0.0

    def test_both_empty(self):
        assert jaccard_similarity({}, {}) == 0.0


class TestGeneralizedJaccard:
    def test_identical(self):
        v = {"a": 2.0, "b": 3.0}
        assert math.isclose(generalized_jaccard_similarity(v, v), 1.0)

    def test_known_value(self):
        # min sum = 1 + 0 = 1; max sum = 2 + 1 = 3
        u = {"a": 1.0, "b": 1.0}
        v = {"a": 2.0}
        assert math.isclose(generalized_jaccard_similarity(u, v), 1 / 3)

    def test_reduces_to_jaccard_on_binary(self):
        u = {"a": 1.0, "b": 1.0}
        v = {"b": 1.0, "c": 1.0}
        assert math.isclose(
            generalized_jaccard_similarity(u, v), jaccard_similarity(u, v)
        )

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            generalized_jaccard_similarity({"a": -1.0}, {"a": 1.0})

    def test_both_empty(self):
        assert generalized_jaccard_similarity({}, {}) == 0.0

    @given(sparse_vectors, sparse_vectors)
    def test_symmetric_and_bounded(self, u, v):
        s1 = generalized_jaccard_similarity(u, v)
        assert math.isclose(s1, generalized_jaccard_similarity(v, u), abs_tol=1e-12)
        assert 0.0 <= s1 <= 1.0


class TestDispatch:
    @pytest.mark.parametrize("measure,function", [
        (VectorSimilarity.COSINE, cosine_similarity),
        (VectorSimilarity.JACCARD, jaccard_similarity),
        (VectorSimilarity.GENERALIZED_JACCARD, generalized_jaccard_similarity),
    ])
    def test_lookup(self, measure, function):
        assert vector_similarity_function(measure) is function
