"""Tests for hierarchical LDA over the nested CRP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.base import TextDoc
from repro.models.topic.hlda import HldaModel


def docs_from(texts: list[str]) -> list[TextDoc]:
    return [TextDoc.from_tokens(tuple(t.split())) for t in texts]


THEMED = docs_from([
    "star planet orbit star moon",
    "orbit moon star planet",
    "planet star orbit moon",
    "bread flour oven bread yeast",
    "yeast oven bread flour",
    "flour bread yeast oven",
] * 2)


class TestConfiguration:
    def test_invalid_levels(self):
        with pytest.raises(ConfigurationError):
            HldaModel(levels=0)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            HldaModel(alpha=0.0)
        with pytest.raises(ConfigurationError):
            HldaModel(beta=-0.1)
        with pytest.raises(ConfigurationError):
            HldaModel(gamma=0.0)


class TestTraining:
    @pytest.fixture(scope="class")
    def fitted(self) -> HldaModel:
        return HldaModel(
            levels=2, iterations=20, infer_iterations=8, seed=0, pooling="NP",
            gamma=0.5,
        ).fit(THEMED)

    def test_tree_has_nodes(self, fitted):
        # At least the root plus one child path must exist.
        assert fitted.n_topics >= 2

    def test_theta_supported_on_one_path(self, fitted):
        theta = fitted.represent(docs_from(["star orbit"])[0])
        assert np.isclose(theta.sum(), 1.0)
        # The distribution touches at most `levels` distinct nodes.
        assert (theta > 0).sum() <= 2

    def test_themes_get_distinct_paths(self, fitted):
        space = fitted.represent(docs_from(["star planet orbit moon"])[0])
        bread = fitted.represent(docs_from(["bread flour yeast oven"])[0])
        space2 = fitted.represent(docs_from(["moon orbit planet"])[0])
        assert fitted.score(space, space2) >= fitted.score(space, bread)

    def test_empty_doc_uniform(self, fitted):
        theta = fitted.represent(TextDoc.from_tokens(()))
        assert np.isclose(theta.sum(), 1.0)

    def test_three_levels_default(self):
        assert HldaModel().levels == 3

    def test_reproducible(self):
        a = HldaModel(levels=2, iterations=5, seed=3, pooling="NP").fit(THEMED)
        b = HldaModel(levels=2, iterations=5, seed=3, pooling="NP").fit(THEMED)
        assert a.n_topics == b.n_topics

    def test_describe(self, fitted):
        info = fitted.describe()
        assert info["model"] == "HLDA"
        assert info["levels"] == 2
