"""Tests for the HDP direct-assignment sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.base import TextDoc
from repro.models.topic.gibbs import sample_crp_tables
from repro.models.topic.hdp import HdpModel


def docs_from(texts: list[str]) -> list[TextDoc]:
    return [TextDoc.from_tokens(tuple(t.split())) for t in texts]


THEMED = docs_from([
    "piano violin concert piano",
    "violin concert piano music",
    "music piano violin concert",
    "goal referee match goal",
    "match referee goal kick",
    "kick goal match referee",
] * 2)


class TestCrpTables:
    def test_zero_customers(self):
        rng = np.random.default_rng(0)
        assert sample_crp_tables(0, 1.0, rng) == 0

    def test_at_least_one_table_for_customers(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert 1 <= sample_crp_tables(5, 1.0, rng) <= 5

    def test_degenerate_concentration(self):
        rng = np.random.default_rng(0)
        assert sample_crp_tables(10, 0.0, rng) == 1

    def test_high_concentration_means_more_tables(self):
        rng = np.random.default_rng(0)
        low = np.mean([sample_crp_tables(50, 0.1, rng) for _ in range(50)])
        high = np.mean([sample_crp_tables(50, 50.0, rng) for _ in range(50)])
        assert high > low


class TestHdpConfiguration:
    def test_invalid_concentrations(self):
        with pytest.raises(ConfigurationError):
            HdpModel(alpha=0.0)
        with pytest.raises(ConfigurationError):
            HdpModel(gamma=-1.0)
        with pytest.raises(ConfigurationError):
            HdpModel(eta=0.0)

    def test_invalid_topic_bounds(self):
        with pytest.raises(ConfigurationError):
            HdpModel(initial_topics=0)
        with pytest.raises(ConfigurationError):
            HdpModel(initial_topics=10, max_topics=5)


class TestHdpTraining:
    @pytest.fixture(scope="class")
    def fitted(self) -> HdpModel:
        return HdpModel(
            iterations=25, infer_iterations=8, seed=0, pooling="NP",
            initial_topics=4, max_topics=32,
        ).fit(THEMED)

    def test_topic_count_is_data_driven(self, fitted):
        # Nonparametric: the fitted inventory can differ from the initial.
        assert 1 <= fitted.n_topics <= 32

    def test_phi_rows_are_distributions(self, fitted):
        assert np.allclose(fitted.phi.sum(axis=1), 1.0)

    def test_stick_weights_normalised(self, fitted):
        assert np.isclose(fitted.stick_weights.sum(), 1.0)
        assert len(fitted.stick_weights) == fitted.n_topics

    def test_inference_is_distribution(self, fitted):
        theta = fitted.represent(docs_from(["piano violin"])[0])
        assert np.isclose(theta.sum(), 1.0)
        assert theta.shape == (fitted.n_topics,)

    def test_themes_separate(self, fitted):
        music = fitted.represent(docs_from(["piano violin concert"])[0])
        sport = fitted.represent(docs_from(["goal match referee"])[0])
        music2 = fitted.represent(docs_from(["music concert piano"])[0])
        assert fitted.score(music, music2) > fitted.score(music, sport)

    def test_empty_doc_uniform(self, fitted):
        theta = fitted.represent(TextDoc.from_tokens(()))
        assert np.isclose(theta.sum(), 1.0)

    def test_reproducible(self):
        runs = []
        for _ in range(2):
            m = HdpModel(iterations=5, seed=9, pooling="NP", initial_topics=3).fit(THEMED)
            runs.append(m.n_topics)
        assert runs[0] == runs[1]

    def test_describe(self, fitted):
        info = fitted.describe()
        assert info["model"] == "HDP"
        assert info["alpha"] == 1.0
