"""Tests for the Biterm Topic Model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.base import TextDoc
from repro.models.topic.btm import BitermTopicModel, extract_biterms


def docs_from(texts: list[str]) -> list[TextDoc]:
    return [TextDoc.from_tokens(tuple(t.split())) for t in texts]


THEMED = docs_from([
    "rain cloud storm rain",
    "storm cloud rain wind",
    "wind rain storm cloud",
    "pasta sauce cheese pasta",
    "cheese sauce pasta basil",
    "basil pasta cheese sauce",
] * 2)


class TestExtractBiterms:
    def test_whole_document_window(self):
        biterms = list(extract_biterms([0, 1, 2], window=None))
        assert biterms == [(0, 1), (0, 2), (1, 2)]

    def test_biterms_are_unordered(self):
        assert list(extract_biterms([2, 1], window=None)) == [(1, 2)]

    def test_window_limits_distance(self):
        biterms = set(extract_biterms([0, 1, 2, 3], window=1))
        assert biterms == {(0, 1), (1, 2), (2, 3)}

    def test_single_word_no_biterms(self):
        assert list(extract_biterms([5], window=None)) == []

    def test_repeated_words_make_self_biterms(self):
        assert list(extract_biterms([3, 3], window=None)) == [(3, 3)]


class TestBtmConfiguration:
    def test_invalid_topics(self):
        with pytest.raises(ConfigurationError):
            BitermTopicModel(n_topics=0)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            BitermTopicModel(n_topics=2, window=0)

    def test_invalid_max_biterms(self):
        with pytest.raises(ConfigurationError):
            BitermTopicModel(n_topics=2, max_biterms=0)

    def test_default_alpha(self):
        assert BitermTopicModel(n_topics=50).alpha == pytest.approx(1.0)


class TestBtmTraining:
    @pytest.fixture(scope="class")
    def fitted(self) -> BitermTopicModel:
        return BitermTopicModel(
            n_topics=2, iterations=50, seed=0, pooling="NP"
        ).fit(THEMED)

    def test_phi_rows_are_distributions(self, fitted):
        assert np.allclose(fitted.phi.sum(axis=1), 1.0)

    def test_corpus_theta_is_distribution(self, fitted):
        assert np.isclose(fitted.corpus_theta.sum(), 1.0)

    def test_topics_separate_themes(self, fitted):
        vocab = fitted.vocabulary
        rain = fitted.phi[:, vocab.id_of("rain")]
        pasta = fitted.phi[:, vocab.id_of("pasta")]
        assert int(np.argmax(rain)) != int(np.argmax(pasta))

    def test_inference_uses_biterm_formula(self, fitted):
        theta = fitted.represent(docs_from(["rain storm cloud"])[0])
        assert np.isclose(theta.sum(), 1.0)
        weather = fitted.represent(docs_from(["storm wind"])[0])
        food = fitted.represent(docs_from(["pasta cheese"])[0])
        assert fitted.score(theta, weather) > fitted.score(theta, food)

    def test_single_word_doc_falls_back_to_word_evidence(self, fitted):
        theta = fitted.represent(docs_from(["rain"])[0])
        assert np.isclose(theta.sum(), 1.0)
        weather = fitted.represent(docs_from(["storm wind"])[0])
        food = fitted.represent(docs_from(["pasta cheese"])[0])
        assert fitted.score(theta, weather) > fitted.score(theta, food)

    def test_empty_doc_uniform(self, fitted):
        assert np.allclose(fitted.represent(TextDoc.from_tokens(())), 0.5)

    def test_max_biterms_subsampling_still_learns(self):
        model = BitermTopicModel(
            n_topics=2, iterations=40, seed=0, pooling="NP", max_biterms=20
        ).fit(THEMED)
        vocab = model.vocabulary
        assert np.allclose(model.phi.sum(axis=1), 1.0)
        assert model.phi.shape == (2, len(vocab))

    def test_describe(self, fitted):
        info = fitted.describe()
        assert info["model"] == "BTM"
        assert info["window"] == 30
