"""Tests specific to the collapsed-Gibbs LDA implementation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.base import TextDoc
from repro.models.topic.lda import LdaModel


def docs_from(texts: list[str]) -> list[TextDoc]:
    return [TextDoc.from_tokens(tuple(t.split())) for t in texts]


#: Two cleanly separated themes; LDA with K=2 should recover them.
THEMED = docs_from([
    "apple banana fruit apple banana",
    "banana fruit apple fruit",
    "fruit apple banana apple",
    "engine wheel motor engine wheel",
    "motor wheel engine motor",
    "wheel engine motor wheel motor",
] * 3)


class TestConfiguration:
    def test_default_alpha_is_fifty_over_k(self):
        assert math.isclose(LdaModel(n_topics=50, iterations=1).alpha, 1.0)
        assert math.isclose(LdaModel(n_topics=100, iterations=1).alpha, 0.5)

    def test_explicit_alpha_respected(self):
        assert LdaModel(n_topics=10, alpha=0.3, iterations=1).alpha == 0.3

    def test_invalid_topics(self):
        with pytest.raises(ConfigurationError):
            LdaModel(n_topics=0)


class TestTraining:
    @pytest.fixture(scope="class")
    def fitted(self) -> LdaModel:
        # alpha is set explicitly: the paper's 50/K heuristic targets
        # K in [50, 200]; at K=2 it would swamp the per-document counts.
        model = LdaModel(
            n_topics=2, alpha=0.5, iterations=60, infer_iterations=15,
            seed=0, pooling="NP",
        )
        return model.fit(THEMED)

    def test_phi_rows_are_distributions(self, fitted):
        phi = fitted.phi
        assert phi.shape[0] == 2
        assert np.allclose(phi.sum(axis=1), 1.0)
        assert (phi >= 0).all()

    def test_topics_separate_themes(self, fitted):
        vocab = fitted.vocabulary
        fruit = fitted.phi[:, vocab.id_of("apple")]
        engine = fitted.phi[:, vocab.id_of("engine")]
        # apple and engine must peak on different topics
        assert int(np.argmax(fruit)) != int(np.argmax(engine))

    def test_inference_matches_theme(self, fitted):
        theta_fruit = fitted.represent(docs_from(["apple banana fruit"])[0])
        theta_engine = fitted.represent(docs_from(["engine motor wheel"])[0])
        assert int(np.argmax(theta_fruit)) != int(np.argmax(theta_engine))

    def test_same_theme_docs_are_similar(self, fitted):
        a = fitted.represent(docs_from(["apple banana"])[0])
        b = fitted.represent(docs_from(["fruit apple"])[0])
        c = fitted.represent(docs_from(["engine wheel"])[0])
        sim_ab = fitted.score(a, b)
        sim_ac = fitted.score(a, c)
        assert sim_ab > sim_ac

    def test_describe_contains_hyperparameters(self, fitted):
        info = fitted.describe()
        assert info["model"] == "LDA"
        assert info["n_topics"] == 2
        assert info["beta"] == 0.01
