"""Tests for the Labeled LDA label extraction."""

from __future__ import annotations

import pytest

from repro.models.topic.labels import EMOTICON_CLASSES, LabelExtractor


class TestEmoticonClasses:
    def test_nine_classes(self):
        assert len(EMOTICON_CLASSES) == 9

    def test_expected_classes(self):
        assert set(EMOTICON_CLASSES) == {
            "smile", "frown", "wink", "big grin", "tongue",
            "heart", "surprise", "awkward", "confused",
        }

    def test_no_token_in_two_classes(self):
        seen: set[str] = set()
        for tokens in EMOTICON_CLASSES.values():
            for tok in tokens:
                assert tok not in seen
                seen.add(tok)


class TestHashtagLabels:
    def test_only_frequent_hashtags_become_labels(self):
        docs = [["#hot", "word"]] * 5 + [["#cold", "word"]]
        ex = LabelExtractor(min_hashtag_count=3).fit(docs)
        assert ex.frequent_hashtags == {"#hot"}
        assert "#hot" in ex.labels_for(["#hot", "x"], 0)
        assert "#cold" not in ex.labels_for(["#cold", "x"], 0)

    def test_hashtag_labels_have_no_variations(self):
        docs = [["#tag"]] * 40
        ex = LabelExtractor(min_hashtag_count=30).fit(docs)
        for i in range(20):
            assert ex.labels_for(["#tag"], i) == ["#tag"]

    def test_duplicate_hashtag_counted_once_per_tweet_label(self):
        docs = [["#t", "#t"]] * 40
        ex = LabelExtractor(min_hashtag_count=30).fit(docs)
        assert ex.labels_for(["#t", "#t"], 0) == ["#t"]


class TestOtherLabels:
    @pytest.fixture()
    def extractor(self) -> LabelExtractor:
        return LabelExtractor().fit([])

    def test_question_mark(self, extractor):
        labels = extractor.labels_for(["really", "?"], 4)
        assert labels == ["question-4"]

    def test_emoticon_class_with_variation(self, extractor):
        labels = extractor.labels_for([":("], 7)
        assert labels == ["frown-7"]

    def test_no_variation_classes(self, extractor):
        # "heart" is one of the paper's no-variation labels.
        assert extractor.labels_for(["<3"], 3) == ["heart"]
        assert extractor.labels_for([":d"], 9) == ["big grin"]

    def test_mention_as_first_token(self, extractor):
        assert extractor.labels_for(["@bob", "hi"], 2) == ["@user-2"]

    def test_mention_not_first_token_ignored(self, extractor):
        assert extractor.labels_for(["hi", "@bob"], 2) == []

    def test_variation_deterministic(self, extractor):
        assert extractor.labels_for(["?"], 13) == extractor.labels_for(["?"], 13)
        assert extractor.labels_for(["?"], 13) == extractor.labels_for(["?"], 3)

    def test_multiple_label_kinds_in_one_tweet(self, extractor):
        labels = extractor.labels_for(["@a", "nice", ":)", "?"], 1)
        assert set(labels) == {"@user-1", "smile-1", "question-1"}

    def test_same_class_emitted_once(self, extractor):
        assert extractor.labels_for([":)", ":-)"], 0) == ["smile-0"]

    def test_plain_tweet_no_labels(self, extractor):
        assert extractor.labels_for(["just", "words"], 0) == []

    def test_invalid_variations(self):
        with pytest.raises(ValueError):
            LabelExtractor(n_variations=0)
