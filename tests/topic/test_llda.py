"""Tests for Labeled LDA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.base import TextDoc
from repro.models.topic.llda import LabeledLdaModel


def docs_from(texts: list[str]) -> list[TextDoc]:
    return [TextDoc.from_tokens(tuple(t.split())) for t in texts]


#: #news tweets about politics, #fun tweets about games; the hashtags
#: occur often enough to become labels (min_hashtag_count below).
LABELED = docs_from(
    ["#news vote election law #news" for _ in range(6)]
    + ["#fun game play win #fun" for _ in range(6)]
)


class TestLabeledLda:
    @pytest.fixture(scope="class")
    def fitted(self) -> LabeledLdaModel:
        from repro.models.topic.labels import LabelExtractor
        model = LabeledLdaModel(
            n_latent_topics=2,
            iterations=40,
            infer_iterations=10,
            seed=0,
            pooling="NP",
            label_extractor=LabelExtractor(min_hashtag_count=3),
        )
        return model.fit(LABELED)

    def test_invalid_latent_topics(self):
        with pytest.raises(ConfigurationError):
            LabeledLdaModel(n_latent_topics=0)

    def test_topic_inventory_is_latent_plus_labels(self, fitted):
        names = fitted.topic_names
        assert "Topic 1" in names and "Topic 2" in names
        assert "#news" in names and "#fun" in names

    def test_alpha_derived_from_total_topics(self, fitted):
        assert fitted.alpha == pytest.approx(50.0 / fitted.n_topics)

    def test_phi_rows_are_distributions(self, fitted):
        assert np.allclose(fitted.phi.sum(axis=1), 1.0)

    def test_label_topic_matches_its_words(self, fitted):
        vocab = fitted.vocabulary
        names = list(fitted.topic_names)
        news_topic = names.index("#news")
        fun_topic = names.index("#fun")
        vote = fitted.phi[:, vocab.id_of("vote")]
        game = fitted.phi[:, vocab.id_of("game")]
        # "vote" should be likelier under #news than under #fun, and
        # vice versa for "game".
        assert vote[news_topic] > vote[fun_topic]
        assert game[fun_topic] > game[news_topic]

    def test_inference_separates_themes(self, fitted):
        news = fitted.represent(docs_from(["vote election law"])[0])
        fun = fitted.represent(docs_from(["game play win"])[0])
        assert fitted.score(news, fun) < fitted.score(news, news)

    def test_theta_is_distribution(self, fitted):
        theta = fitted.represent(docs_from(["vote game"])[0])
        assert np.isclose(theta.sum(), 1.0)
        assert theta.shape == (fitted.n_topics,)

    def test_describe(self, fitted):
        info = fitted.describe()
        assert info["model"] == "LLDA"
        assert info["n_latent_topics"] == 2
