"""Tests for the shared topic-model machinery."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError, EmptyCorpusError
from repro.models.base import TextDoc
from repro.models.topic.base import dense_centroid, dense_cosine, dense_rocchio
from repro.models.topic.lda import LdaModel


class TestDenseCosine:
    def test_identical(self):
        v = np.array([1.0, 2.0])
        assert math.isclose(dense_cosine(v, v), 1.0)

    def test_orthogonal(self):
        assert dense_cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_null_vector(self):
        assert dense_cosine(np.zeros(2), np.ones(2)) == 0.0

    @given(arrays(float, 4, elements=st.floats(0, 10)),
           arrays(float, 4, elements=st.floats(0, 10)))
    def test_bounded_and_symmetric(self, u, v):
        s = dense_cosine(u, v)
        assert math.isclose(s, dense_cosine(v, u), abs_tol=1e-12)
        assert -1e-9 <= s <= 1.0 + 1e-9


class TestDenseAggregation:
    def test_centroid_normalises(self):
        c = dense_centroid([np.array([10.0, 0.0]), np.array([0.0, 1.0])])
        assert math.isclose(c[0], 0.5) and math.isclose(c[1], 0.5)

    def test_centroid_empty_raises(self):
        with pytest.raises(EmptyCorpusError):
            dense_centroid([])

    def test_rocchio_sign_structure(self):
        model = dense_rocchio(
            [np.array([1.0, 0.0]), np.array([0.0, 1.0])], labels=[1, 0]
        )
        assert model[0] > 0 > model[1]

    def test_rocchio_length_mismatch(self):
        with pytest.raises(ValueError):
            dense_rocchio([np.ones(2)], labels=[1, 0])

    def test_rocchio_empty_raises(self):
        with pytest.raises(EmptyCorpusError):
            dense_rocchio([], labels=[])


class TestTopicModelProtocol:
    """Protocol-level behaviour shared by all topic models (via LDA)."""

    def test_sum_aggregation_rejected(self):
        with pytest.raises(ConfigurationError):
            LdaModel(n_topics=2, aggregation="sum")

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            LdaModel(n_topics=2, iterations=0)

    def test_fit_on_empty_corpus_raises(self):
        with pytest.raises(EmptyCorpusError):
            LdaModel(n_topics=2, iterations=1).fit([])

    def test_represent_before_fit_raises(self):
        from repro.errors import NotFittedError
        with pytest.raises(NotFittedError):
            LdaModel(n_topics=2, iterations=1).represent(TextDoc.from_tokens(("a",)))

    def test_theta_is_distribution(self, tiny_corpus, tiny_user_ids):
        model = LdaModel(n_topics=3, iterations=5, infer_iterations=3, seed=1)
        model.fit(tiny_corpus, user_ids=tiny_user_ids)
        theta = model.represent(tiny_corpus[0])
        assert theta.shape == (3,)
        assert math.isclose(theta.sum(), 1.0, abs_tol=1e-9)
        assert (theta >= 0).all()

    def test_empty_document_gets_uniform(self, tiny_corpus, tiny_user_ids):
        model = LdaModel(n_topics=4, iterations=3, seed=1)
        model.fit(tiny_corpus, user_ids=tiny_user_ids)
        theta = model.represent(TextDoc.from_tokens(()))
        assert np.allclose(theta, 0.25)

    def test_oov_only_document_gets_uniform(self, tiny_corpus, tiny_user_ids):
        model = LdaModel(n_topics=4, iterations=3, seed=1)
        model.fit(tiny_corpus, user_ids=tiny_user_ids)
        theta = model.represent(TextDoc.from_tokens(("zzzunknown",)))
        assert np.allclose(theta, 0.25)

    def test_user_model_is_centroid(self, tiny_corpus, tiny_user_ids):
        model = LdaModel(n_topics=3, iterations=5, infer_iterations=3, seed=1)
        model.fit(tiny_corpus, user_ids=tiny_user_ids)
        um = model.build_user_model(tiny_corpus[:2])
        assert um.shape == (3,)
        assert np.linalg.norm(um) <= 1.0 + 1e-9

    def test_rocchio_user_model(self, tiny_corpus, tiny_user_ids):
        model = LdaModel(
            n_topics=3, iterations=5, infer_iterations=3, seed=1,
            aggregation="rocchio",
        )
        model.fit(tiny_corpus, user_ids=tiny_user_ids)
        um = model.build_user_model(tiny_corpus[:2], labels=[1, 0])
        assert um.shape == (3,)

    def test_rocchio_requires_labels(self, tiny_corpus, tiny_user_ids):
        model = LdaModel(n_topics=2, iterations=2, seed=1, aggregation="rocchio")
        model.fit(tiny_corpus, user_ids=tiny_user_ids)
        with pytest.raises(ConfigurationError):
            model.build_user_model(tiny_corpus[:1])

    def test_reproducible_with_seed(self, tiny_corpus, tiny_user_ids):
        thetas = []
        for _ in range(2):
            model = LdaModel(n_topics=3, iterations=5, infer_iterations=3, seed=42)
            model.fit(tiny_corpus, user_ids=tiny_user_ids)
            thetas.append(model.represent(tiny_corpus[0]))
        assert np.allclose(thetas[0], thetas[1])
