"""Tests for the EM-trained PLSA implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.models.base import TextDoc
from repro.models.topic.plsa import PlsaModel


def docs_from(texts: list[str]) -> list[TextDoc]:
    return [TextDoc.from_tokens(tuple(t.split())) for t in texts]


THEMED = docs_from([
    "sun beach sand sun waves",
    "beach waves sand sun",
    "sand sun beach waves beach",
    "code bug test code compile",
    "compile test bug code",
    "test code compile bug bug",
] * 2)


class TestPlsa:
    @pytest.fixture(scope="class")
    def fitted(self) -> PlsaModel:
        return PlsaModel(
            n_topics=2, iterations=40, infer_iterations=20, seed=0, pooling="NP"
        ).fit(THEMED)

    def test_invalid_topics(self):
        with pytest.raises(ConfigurationError):
            PlsaModel(n_topics=0)

    def test_phi_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            _ = PlsaModel(n_topics=2).phi

    def test_phi_rows_are_distributions(self, fitted):
        assert np.allclose(fitted.phi.sum(axis=1), 1.0, atol=1e-6)
        assert (fitted.phi >= 0).all()

    def test_topics_separate_themes(self, fitted):
        vocab = fitted.vocabulary
        beach = fitted.phi[:, vocab.id_of("beach")]
        code = fitted.phi[:, vocab.id_of("code")]
        assert int(np.argmax(beach)) != int(np.argmax(code))

    def test_inference_is_distribution(self, fitted):
        theta = fitted.represent(docs_from(["sun beach"])[0])
        assert np.isclose(theta.sum(), 1.0)
        assert (theta >= 0).all()

    def test_inference_separates_themes(self, fitted):
        beach = fitted.represent(docs_from(["sun beach sand"])[0])
        code = fitted.represent(docs_from(["code bug compile"])[0])
        assert fitted.score(beach, code) < 0.9

    def test_empty_doc_uniform(self, fitted):
        theta = fitted.represent(TextDoc.from_tokens(()))
        assert np.allclose(theta, 0.5)

    def test_reproducible(self):
        a = PlsaModel(n_topics=2, iterations=10, seed=7, pooling="NP").fit(THEMED)
        b = PlsaModel(n_topics=2, iterations=10, seed=7, pooling="NP").fit(THEMED)
        assert np.allclose(a.phi, b.phi)

    def test_describe(self, fitted):
        assert fitted.describe()["model"] == "PLSA"
        assert fitted.describe()["n_topics"] == 2
