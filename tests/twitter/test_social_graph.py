"""Tests for the follow graph and its generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataGenerationError
from repro.twitter.graph import SocialGraph, generate_follow_graph


class TestSocialGraph:
    def test_follow_recorded_both_directions(self):
        g = SocialGraph(3)
        g.add_follow(0, 1)
        assert g.follows(0, 1)
        assert 1 in g.followees(0)
        assert 0 in g.followers(1)

    def test_follow_is_directed(self):
        g = SocialGraph(3)
        g.add_follow(0, 1)
        assert not g.follows(1, 0)
        assert g.reciprocal(0) == frozenset()

    def test_reciprocal_requires_both_directions(self):
        g = SocialGraph(2)
        g.add_follow(0, 1)
        g.add_follow(1, 0)
        assert g.reciprocal(0) == {1}
        assert g.reciprocal(1) == {0}

    def test_self_follow_rejected(self):
        g = SocialGraph(2)
        with pytest.raises(ValueError):
            g.add_follow(0, 0)

    def test_unknown_user_rejected(self):
        g = SocialGraph(2)
        with pytest.raises(KeyError):
            g.add_follow(0, 5)
        with pytest.raises(KeyError):
            g.followees(9)

    def test_edge_count(self):
        g = SocialGraph(3)
        g.add_follow(0, 1)
        g.add_follow(1, 2)
        g.add_follow(0, 1)  # duplicate, idempotent
        assert g.n_edges() == 2

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SocialGraph(-1)


class TestGenerator:
    ROLES = (
        ["seeker"] * 6 + ["balanced"] * 5 + ["producer"] * 3 + ["lurker"] * 6
    )

    @pytest.fixture(scope="class")
    def graph(self) -> SocialGraph:
        return generate_follow_graph(self.ROLES, np.random.default_rng(0))

    def test_minimum_degrees_enforced(self, graph):
        # The paper's dataset filter: >= 3 followers and followees each.
        for user in range(len(self.ROLES)):
            assert len(graph.followees(user)) >= 3
            assert len(graph.followers(user)) >= 3

    def test_seekers_follow_more_than_producers(self, graph):
        seeker_mean = np.mean([
            len(graph.followees(u)) for u, r in enumerate(self.ROLES) if r == "seeker"
        ])
        producer_mean = np.mean([
            len(graph.followees(u)) for u, r in enumerate(self.ROLES) if r == "producer"
        ])
        assert seeker_mean > producer_mean

    def test_producers_have_more_followers_than_lurkers(self, graph):
        producer_mean = np.mean([
            len(graph.followers(u)) for u, r in enumerate(self.ROLES) if r == "producer"
        ])
        lurker_mean = np.mean([
            len(graph.followers(u)) for u, r in enumerate(self.ROLES) if r == "lurker"
        ])
        assert producer_mean > lurker_mean

    def test_reciprocal_edges_exist(self, graph):
        total = sum(len(graph.reciprocal(u)) for u in range(len(self.ROLES)))
        assert total > 0

    def test_unknown_role_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_follow_graph(["seeker", "alien"] * 4, np.random.default_rng(0))

    def test_too_few_users_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_follow_graph(["seeker"] * 2, np.random.default_rng(0))

    def test_interest_length_mismatch_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_follow_graph(
                self.ROLES, np.random.default_rng(0), interests=[np.ones(3)]
            )

    def test_homophily_biases_towards_similar_interests(self):
        rng = np.random.default_rng(1)
        n = 30
        roles = ["balanced"] * n
        # Two interest camps: users 0-14 topic A, 15-29 topic B.
        interests = [np.array([1.0, 0.0]) if u < 15 else np.array([0.0, 1.0])
                     for u in range(n)]
        graph = generate_follow_graph(
            roles, rng, interests=interests, homophily=3.0
        )
        same_camp = cross_camp = 0
        for u in range(n):
            for v in graph.followees(u):
                if (u < 15) == (v < 15):
                    same_camp += 1
                else:
                    cross_camp += 1
        assert same_camp > cross_camp

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_generator_deterministic_per_seed(self, seed):
        g1 = generate_follow_graph(self.ROLES, np.random.default_rng(seed))
        g2 = generate_follow_graph(self.ROLES, np.random.default_rng(seed))
        for u in range(len(self.ROLES)):
            assert g1.followees(u) == g2.followees(u)
