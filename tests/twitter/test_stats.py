"""Tests for Table 2 / Table 3 statistics."""

from __future__ import annotations

import pytest

from repro.twitter.entities import UserType
from repro.twitter.stats import SourceStats, group_statistics, language_census


class TestSourceStats:
    def test_from_counts(self):
        stats = SourceStats.from_counts([1, 2, 3])
        assert stats.total == 6
        assert stats.minimum == 1
        assert stats.mean == 2.0
        assert stats.maximum == 3

    def test_empty(self):
        stats = SourceStats.from_counts([])
        assert stats.total == 0 and stats.mean == 0.0


class TestGroupStatistics:
    def test_matches_dataset_counts(self, small_dataset, small_groups):
        stats = group_statistics(small_dataset, small_groups)
        for group, user_ids in small_groups.items():
            if not user_ids:
                continue
            block = stats[group]
            assert block.n_users == len(user_ids)
            expected_total = sum(len(small_dataset.outgoing(u)) for u in user_ids)
            assert block.outgoing.total == expected_total
            expected_retweets = sum(len(small_dataset.retweets_of(u)) for u in user_ids)
            assert block.retweets.total == expected_retweets

    def test_min_le_mean_le_max(self, small_dataset, small_groups):
        stats = group_statistics(small_dataset, small_groups)
        for block in stats.values():
            if block.n_users == 0:
                continue
            for attr in ("outgoing", "retweets", "incoming", "followers_tweets"):
                source = getattr(block, attr)
                assert source.minimum <= source.mean <= source.maximum


class TestLanguageCensus:
    @pytest.fixture(scope="class")
    def census(self, small_dataset) -> dict[str, int]:
        return language_census(small_dataset)

    def test_counts_cover_active_users_posts(self, small_dataset, census):
        expected = sum(
            len(small_dataset.outgoing(u.user_id)) for u in small_dataset.users
            if small_dataset.outgoing(u.user_id)
        )
        # integer tweet counts: exact in any order
        assert sum(census.values()) == expected  # repro: allow[RPR002]

    def test_english_dominates(self, census):
        # The inventory assigns ~83% of users to English.
        assert census, "census must not be empty"
        assert max(census, key=census.get) == "english"

    def test_only_known_languages(self, small_dataset, census):
        assert set(census) <= set(small_dataset.inventory.language_names)

    def test_census_accuracy_against_ground_truth(self, small_dataset, census):
        # Aggregate truth: tweets per actual author language.
        from collections import Counter
        truth: Counter[str] = Counter()
        for user in small_dataset.users:
            truth[user.language] += len(small_dataset.outgoing(user.user_id))
        # The detected English share should be within 10 points of truth.
        total = sum(truth.values())  # repro: allow[RPR002] -- integer counts
        t_share = truth["english"] / total
        # integer counts: exact in any order
        c_share = census.get("english", 0) / sum(census.values())  # repro: allow[RPR002]
        assert abs(t_share - c_share) < 0.10
