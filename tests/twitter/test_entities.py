"""Tests for the substrate entities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.twitter.entities import Tweet, UserProfile, UserType


class TestUserType:
    @pytest.mark.parametrize("ratio,expected", [
        (5.0, UserType.INFORMATION_PRODUCER),
        (2.01, UserType.INFORMATION_PRODUCER),
        (2.0, UserType.BALANCED_USER),
        (1.0, UserType.BALANCED_USER),
        (0.5, UserType.BALANCED_USER),
        (0.49, UserType.INFORMATION_SEEKER),
        (0.0, UserType.INFORMATION_SEEKER),
    ])
    def test_paper_thresholds(self, ratio, expected):
        assert UserType.from_posting_ratio(ratio) is expected

    def test_string_values(self):
        assert UserType.INFORMATION_PRODUCER.value == "IP"
        assert UserType.ALL.value == "All Users"


class TestTweet:
    def test_original_tweet(self):
        t = Tweet(tweet_id=1, author_id=2, text="hi", timestamp=3)
        assert not t.is_retweet
        assert t.retweet_of is None

    def test_retweet(self):
        t = Tweet(
            tweet_id=2, author_id=3, text="hi", timestamp=4,
            retweet_of=1, original_author_id=2,
        )
        assert t.is_retweet
        assert t.original_author_id == 2

    def test_frozen(self):
        t = Tweet(tweet_id=1, author_id=2, text="hi", timestamp=3)
        with pytest.raises(AttributeError):
            t.text = "new"


class TestUserProfile:
    def test_interests_normalised(self):
        profile = UserProfile(
            user_id=0, interests=np.array([2.0, 2.0]), language="english",
            tweet_rate=1.0,
        )
        assert np.allclose(profile.interests, [0.5, 0.5])

    def test_zero_interest_mass_rejected(self):
        with pytest.raises(ValueError):
            UserProfile(
                user_id=0, interests=np.zeros(3), language="english", tweet_rate=1.0
            )
