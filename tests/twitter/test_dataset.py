"""Tests for dataset generation and the source views."""

from __future__ import annotations

import pytest

from repro.errors import DataGenerationError
from repro.twitter.dataset import DatasetConfig, generate_dataset, select_user_groups
from repro.twitter.entities import UserType


class TestConfigValidation:
    def test_too_few_users(self):
        with pytest.raises(DataGenerationError):
            DatasetConfig(n_users=2)

    def test_zero_ticks(self):
        with pytest.raises(DataGenerationError):
            DatasetConfig(n_ticks=0)

    def test_fractions_must_sum_below_one(self):
        with pytest.raises(DataGenerationError):
            DatasetConfig(seeker_fraction=0.6, balanced_fraction=0.5)


class TestGeneratedDataset:
    def test_reproducible(self):
        cfg = DatasetConfig(n_users=10, n_ticks=20, seed=5)
        a = generate_dataset(cfg)
        b = generate_dataset(cfg)
        assert [t.text for t in a.tweets] == [t.text for t in b.tweets]

    def test_tweets_time_ordered(self, small_dataset):
        stamps = [t.timestamp for t in small_dataset.tweets]
        assert stamps == sorted(stamps)

    def test_retweets_reference_existing_originals(self, small_dataset):
        for tweet in small_dataset.tweets:
            if tweet.is_retweet:
                original = small_dataset.tweet(tweet.retweet_of)
                assert not original.is_retweet  # cascades are 1-hop
                assert original.author_id == tweet.original_author_id
                assert original.text == tweet.text

    def test_retweeter_follows_original_author(self, small_dataset):
        for tweet in small_dataset.tweets:
            if tweet.is_retweet:
                assert small_dataset.graph.follows(
                    tweet.author_id, tweet.original_author_id
                )

    def test_no_user_retweets_same_original_twice(self, small_dataset):
        seen = set()
        for tweet in small_dataset.tweets:
            if tweet.is_retweet:
                key = (tweet.author_id, tweet.retweet_of)
                assert key not in seen
                seen.add(key)

    def test_seen_contains_all_retweeted_originals(self, small_dataset):
        for user in small_dataset.users:
            seen = small_dataset.seen[user.user_id]
            for rt in small_dataset.retweets_of(user.user_id):
                assert rt.retweet_of in seen

    def test_inventory_topic_mismatch_rejected(self, two_language_inventory):
        with pytest.raises(DataGenerationError):
            generate_dataset(
                DatasetConfig(n_users=8, n_ticks=5, n_topics=12),
                inventory=two_language_inventory,  # has 4 topics
            )


class TestSourceViews:
    def test_outgoing_is_t_union_r(self, small_dataset):
        for user in small_dataset.users[:5]:
            uid = user.user_id
            t_ids = {t.tweet_id for t in small_dataset.tweets_of(uid)}
            r_ids = {t.tweet_id for t in small_dataset.retweets_of(uid)}
            out_ids = {t.tweet_id for t in small_dataset.outgoing(uid)}
            assert out_ids == t_ids | r_ids
            assert not t_ids & r_ids

    def test_incoming_is_followees_posts(self, small_dataset):
        uid = small_dataset.users[0].user_id
        followees = small_dataset.graph.followees(uid)
        for tweet in small_dataset.incoming(uid):
            assert tweet.author_id in followees

    def test_reciprocal_subset_of_incoming_and_followers(self, small_dataset):
        uid = small_dataset.users[0].user_id
        c_ids = {t.tweet_id for t in small_dataset.reciprocal_tweets(uid)}
        e_ids = {t.tweet_id for t in small_dataset.incoming(uid)}
        f_ids = {t.tweet_id for t in small_dataset.followers_tweets(uid)}
        assert c_ids <= e_ids
        assert c_ids <= f_ids

    def test_posting_ratio_definition(self, small_dataset):
        uid = small_dataset.users[0].user_id
        expected = len(small_dataset.outgoing(uid)) / len(small_dataset.incoming(uid))
        assert small_dataset.posting_ratio(uid) == pytest.approx(expected)

    def test_user_type_consistent_with_ratio(self, small_dataset):
        for user in small_dataset.users:
            ratio = small_dataset.posting_ratio(user.user_id)
            assert small_dataset.user_type(user.user_id) is UserType.from_posting_ratio(ratio)


class TestGroupSelection:
    def test_groups_follow_paper_structure(self, small_dataset, small_groups):
        is_users = small_groups[UserType.INFORMATION_SEEKER]
        bu_users = small_groups[UserType.BALANCED_USER]
        ip_users = small_groups[UserType.INFORMATION_PRODUCER]
        assert is_users and bu_users  # IP may be empty on tiny data
        # IS users have lower ratios than BU users.
        max_is = max(small_dataset.posting_ratio(u) for u in is_users)
        min_bu_dist = min(abs(small_dataset.posting_ratio(u) - 1.0) for u in bu_users)
        assert max_is < 1.0
        for u in ip_users:
            assert small_dataset.posting_ratio(u) > 2.0

    def test_groups_are_disjoint(self, small_groups):
        is_set = set(small_groups[UserType.INFORMATION_SEEKER])
        bu_set = set(small_groups[UserType.BALANCED_USER])
        ip_set = set(small_groups[UserType.INFORMATION_PRODUCER])
        assert not is_set & bu_set
        assert not is_set & ip_set
        assert not bu_set & ip_set

    def test_all_users_is_superset(self, small_groups):
        union = (
            set(small_groups[UserType.INFORMATION_SEEKER])
            | set(small_groups[UserType.BALANCED_USER])
            | set(small_groups[UserType.INFORMATION_PRODUCER])
        )
        assert union <= set(small_groups[UserType.ALL])

    def test_min_retweets_respected(self, small_dataset, small_groups):
        for group in small_groups.values():
            for uid in group:
                assert len(small_dataset.retweets_of(uid)) >= 5

    def test_impossible_selection_raises(self, small_dataset):
        with pytest.raises(DataGenerationError):
            select_user_groups(small_dataset, min_retweets=10**9)
