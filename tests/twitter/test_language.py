"""Tests for the synthetic language inventory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.twitter.language import (
    DEFAULT_LANGUAGES,
    LanguageInventory,
    SyntheticLanguage,
    default_inventory,
)


class TestSyntheticLanguage:
    def test_make_word_uses_script(self):
        lang = SyntheticLanguage("toy", "bc", "a")
        rng = np.random.default_rng(0)
        word = lang.make_word(rng)
        assert set(word) <= {"a", "b", "c"}

    def test_word_length_bounds(self):
        lang = SyntheticLanguage("toy", "bc", "a", min_syllables=2, max_syllables=2)
        rng = np.random.default_rng(0)
        assert len(lang.make_word(rng)) == 4  # 2 syllables x (C + V)

    def test_spaceless_join(self):
        spaced = SyntheticLanguage("a", "b", "a")
        spaceless = SyntheticLanguage("b", "b", "a", spaceless=True)
        assert spaced.join(["x", "y"]) == "x y"
        assert spaceless.join(["x", "y"]) == "xy"


class TestDefaults:
    def test_ten_default_languages(self):
        assert len(DEFAULT_LANGUAGES) == 10

    def test_english_dominates(self):
        by_name = {lang.name: p for lang, p in DEFAULT_LANGUAGES}
        assert by_name["english"] == max(by_name.values())

    def test_cjk_and_thai_are_spaceless(self):
        spaceless = {lang.name for lang, _ in DEFAULT_LANGUAGES if lang.spaceless}
        assert {"japanese", "chinese", "korean", "thai"} <= spaceless


class TestInventory:
    @pytest.fixture(scope="class")
    def inventory(self, two_language_inventory) -> LanguageInventory:
        return two_language_inventory

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LanguageInventory(n_topics=0)
        with pytest.raises(ValueError):
            LanguageInventory(words_per_topic=0)
        with pytest.raises(ValueError):
            LanguageInventory(shared_word_fraction=1.0)

    def test_topic_vocabularies_have_requested_size(self, inventory):
        for topic in range(inventory.n_topics):
            assert len(inventory.topic_words("alpha", topic)) == 30

    def test_unique_words_do_not_alias_across_topics(self, inventory):
        # Shared words may repeat across topics; the guarantee is that
        # every topic's vocabulary is internally distinct.
        for topic in range(inventory.n_topics):
            vocab = inventory.topic_words("alpha", topic)
            assert len(set(vocab)) == len(vocab)

    def test_languages_have_disjoint_vocabularies(self, inventory):
        words_a = {w for t in range(4) for w in inventory.topic_words("alpha", t)}
        words_b = {w for t in range(4) for w in inventory.topic_words("beta", t)}
        assert not words_a & words_b

    def test_sampling_respects_language(self, inventory):
        rng = np.random.default_rng(0)
        word = inventory.sample_topic_word("alpha", 0, rng)
        assert word in inventory.topic_words("alpha", 0)

    def test_language_frequencies_respected(self, inventory):
        rng = np.random.default_rng(0)
        names = [inventory.sample_language(rng).name for _ in range(500)]
        share_alpha = names.count("alpha") / len(names)
        assert 0.6 < share_alpha < 0.8  # configured 0.7

    def test_successor_chains_are_topic_specific(self, inventory):
        rng = np.random.default_rng(0)
        chain = inventory.sample_chain("alpha", 0, rng, continue_probability=1.0)
        vocab = set(inventory.topic_words("alpha", 0))
        assert set(chain) <= vocab
        assert len(chain) >= 2

    def test_chain_follows_successor_map(self, inventory):
        rng = np.random.default_rng(1)
        chain = inventory.sample_chain("alpha", 1, rng, continue_probability=1.0)
        for prev, nxt in zip(chain, chain[1:]):
            assert nxt in inventory.successors("alpha", 1, prev)

    def test_collocations_available(self, inventory):
        rng = np.random.default_rng(0)
        pair = inventory.sample_collocation("alpha", 0, rng)
        assert pair is not None
        assert pair in inventory.collocations("alpha", 0)

    def test_sample_texts_in_language_script(self, inventory):
        rng = np.random.default_rng(0)
        texts = inventory.sample_texts("beta", 5, 6, rng)
        assert len(texts) == 5
        allowed = set("klmnpraiu ")
        for text in texts:
            assert set(text) <= allowed

    def test_default_inventory_reproducible(self):
        a = default_inventory(seed=1, n_topics=4)
        b = default_inventory(seed=1, n_topics=4)
        assert a.topic_words("english", 0) == b.topic_words("english", 0)
