"""Tests for the retweet policy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.twitter.behavior import RetweetPolicy
from repro.twitter.entities import UserProfile


@pytest.fixture()
def profile():
    return UserProfile(
        user_id=0,
        interests=np.array([0.6, 0.3, 0.1]),
        language="english",
        tweet_rate=1.0,
    )


class TestValidation:
    def test_base_probability_bounds(self):
        with pytest.raises(ValueError):
            RetweetPolicy(base_probability=0.0)
        with pytest.raises(ValueError):
            RetweetPolicy(base_probability=1.5)

    def test_negative_sharpness_rejected(self):
        with pytest.raises(ValueError):
            RetweetPolicy(sharpness=-1.0)

    def test_social_noise_bounds(self):
        with pytest.raises(ValueError):
            RetweetPolicy(social_noise=1.5)


class TestMatchScore:
    def test_pure_top_interest_scores_one(self, profile):
        policy = RetweetPolicy()
        mix = np.array([1.0, 0.0, 0.0])
        assert policy.match_score(profile, mix) == pytest.approx(1.0)

    def test_off_interest_scores_low(self, profile):
        policy = RetweetPolicy()
        mix = np.array([0.0, 0.0, 1.0])
        assert policy.match_score(profile, mix) < 0.2

    def test_score_bounded(self, profile):
        policy = RetweetPolicy()
        for mix in (np.array([1.0, 0, 0]), np.array([0, 1.0, 0]), np.ones(3) / 3):
            assert 0.0 <= policy.match_score(profile, mix) <= 1.0


class TestProbability:
    def test_monotone_in_match(self, profile):
        policy = RetweetPolicy(social_noise=0.0)
        on = policy.probability(profile, np.array([1.0, 0.0, 0.0]))
        off = policy.probability(profile, np.array([0.0, 0.0, 1.0]))
        assert on > off

    def test_social_noise_lifts_off_topic_probability(self, profile):
        off_mix = np.array([0.0, 0.0, 1.0])
        without = RetweetPolicy(social_noise=0.0).probability(profile, off_mix)
        with_noise = RetweetPolicy(social_noise=0.5).probability(profile, off_mix)
        assert with_noise > without

    def test_probability_capped(self, profile):
        hot = UserProfile(
            user_id=1, interests=np.array([1.0, 0.0]), language="english",
            tweet_rate=1.0, retweet_affinity=5.0,
        )
        policy = RetweetPolicy(base_probability=0.9, max_probability=0.8)
        assert policy.probability(hot, np.array([1.0, 0.0])) <= 0.8

    def test_sharpness_widens_gap(self, profile):
        mid_mix = np.array([0.3, 0.4, 0.3])
        soft = RetweetPolicy(sharpness=1.0, social_noise=0.0)
        sharp = RetweetPolicy(sharpness=5.0, social_noise=0.0)
        assert sharp.probability(profile, mid_mix) < soft.probability(profile, mid_mix)

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_probability_always_valid(self, a, b, c):
        total = a + b + c
        if total == 0:
            return
        mix = np.array([a, b, c]) / total
        profile = UserProfile(
            user_id=0, interests=np.array([0.5, 0.3, 0.2]),
            language="english", tweet_rate=1.0,
        )
        p = RetweetPolicy().probability(profile, mix)
        assert 0.0 <= p <= 0.95


class TestDecide:
    def test_decision_follows_probability(self, profile):
        rng = np.random.default_rng(0)
        policy = RetweetPolicy(social_noise=0.0)
        on_mix = np.array([1.0, 0.0, 0.0])
        decisions = [policy.decide(profile, on_mix, rng) for _ in range(300)]
        observed = np.mean(decisions)
        expected = policy.probability(profile, on_mix)
        assert abs(observed - expected) < 0.1
