"""Tests for tweet composition and the noise channels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.twitter.entities import UserProfile
from repro.twitter.generator import NoiseChannel, TweetComposer


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def profile(two_language_inventory):
    return UserProfile(
        user_id=0,
        interests=np.array([0.7, 0.1, 0.1, 0.1]),
        language="alpha",
        tweet_rate=1.0,
    )


class TestNoiseChannel:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            NoiseChannel(misspell_rate=0.6, lengthen_rate=0.5, abbreviate_rate=0.0)

    def test_zero_rates_never_corrupt(self, rng):
        channel = NoiseChannel(0.0, 0.0, 0.0)
        assert channel.corrupt("word", rng) == "word"

    def test_short_words_untouched(self, rng):
        channel = NoiseChannel(1.0, 0.0, 0.0)
        assert channel.corrupt("a", rng) == "a"

    def test_misspell_changes_word(self, rng):
        channel = NoiseChannel(misspell_rate=1.0, lengthen_rate=0.0, abbreviate_rate=0.0)
        word = "tweeting"
        corrupted = channel.corrupt(word, rng)
        assert corrupted != word
        assert abs(len(corrupted) - len(word)) <= 1

    def test_lengthen_repeats_character(self, rng):
        channel = NoiseChannel(misspell_rate=0.0, lengthen_rate=1.0, abbreviate_rate=0.0)
        corrupted = channel.corrupt("yes", rng)
        assert len(corrupted) >= len("yes") + 2

    def test_abbreviate_drops_vowels(self):
        assert NoiseChannel._abbreviate("goodnight") == "gdnght"

    def test_abbreviate_keeps_first_and_last(self):
        out = NoiseChannel._abbreviate("around")
        assert out[0] == "a" and out[-1] == "d"

    def test_abbreviate_short_word_untouched(self):
        assert NoiseChannel._abbreviate("cat") == "cat"


class TestTweetComposer:
    def test_invalid_word_bounds(self, two_language_inventory):
        with pytest.raises(ValueError):
            TweetComposer(two_language_inventory, min_words=5, max_words=3)

    def test_compose_returns_text_and_mix(self, two_language_inventory, profile, rng):
        composer = TweetComposer(two_language_inventory)
        composed = composer.compose(profile, rng)
        assert composed.text
        assert len(composed.topic_mix) == 4
        assert abs(sum(composed.topic_mix) - 1.0) < 1e-9

    def test_topic_mix_reflects_interests(self, two_language_inventory, profile, rng):
        composer = TweetComposer(two_language_inventory, topic_concentration=50.0)
        dominant = [int(np.argmax(composer.sample_topic_mix(profile, rng)))
                    for _ in range(200)]
        # Topic 0 holds 70% of the profile's interest mass.
        assert dominant.count(0) > 100

    def test_hashtag_rendered_in_dominant_language(self, two_language_inventory):
        composer = TweetComposer(two_language_inventory)
        dominant = two_language_inventory.language_names[0]
        for topic in range(4):
            tag = composer.hashtag_for_topic(topic)
            assert tag.startswith("#")
            assert tag[1:] in two_language_inventory.topic_words(dominant, topic)

    def test_decorations_appear_at_configured_rates(
        self, two_language_inventory, profile, rng
    ):
        composer = TweetComposer(
            two_language_inventory,
            hashtag_rate=1.0, url_rate=1.0, emoticon_rate=1.0, question_rate=1.0,
            mention_rate=1.0,
        )
        composed = composer.compose(profile, rng, mentionable=(7,))
        assert "#" in composed.text
        assert "http://t.co/" in composed.text
        assert "@user7" in composed.text
        assert composed.text.rstrip().endswith("?")

    def test_no_decorations_when_rates_zero(self, two_language_inventory, profile, rng):
        composer = TweetComposer(
            two_language_inventory,
            hashtag_rate=0.0, url_rate=0.0, emoticon_rate=0.0, question_rate=0.0,
            mention_rate=0.0,
        )
        text = composer.compose(profile, rng).text
        assert "#" not in text and "@" not in text and "http" not in text

    def test_word_count_within_bounds(self, two_language_inventory, profile, rng):
        composer = TweetComposer(
            two_language_inventory, min_words=4, max_words=6,
            hashtag_rate=0.0, url_rate=0.0, emoticon_rate=0.0,
            question_rate=0.0, mention_rate=0.0, phrase_rate=0.0,
            common_word_rate=0.0,
        )
        for _ in range(20):
            words = composer.compose(profile, rng).text.split()
            assert 4 <= len(words) <= 6

    def test_explicit_topic_mix_used(self, two_language_inventory, profile, rng):
        composer = TweetComposer(two_language_inventory)
        mix = np.array([0.0, 0.0, 1.0, 0.0])
        composed = composer.compose(profile, rng, topic_mix=mix)
        assert composed.topic_mix == (0.0, 0.0, 1.0, 0.0)
