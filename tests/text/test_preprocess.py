"""Tests for corpus-level preprocessing (stop words, cleaning)."""

from __future__ import annotations

import pytest

from repro.text.preprocess import Preprocessor, StopWordFilter, clean_for_langdetect


class TestStopWordFilter:
    def test_removes_top_k(self):
        docs = [["the", "cat"], ["the", "dog"], ["the", "bird"]]
        filt = StopWordFilter(top_k=1).fit(docs)
        assert filt.stop_words == {"the"}
        assert filt(["the", "cat"]) == ["cat"]

    def test_unfitted_is_noop(self):
        assert StopWordFilter(top_k=5)(["a", "b"]) == ["a", "b"]

    def test_top_k_zero_removes_nothing(self):
        filt = StopWordFilter(top_k=0).fit([["a", "a"]])
        assert filt(["a"]) == ["a"]

    def test_negative_top_k_rejected(self):
        with pytest.raises(ValueError):
            StopWordFilter(top_k=-1)

    def test_fit_replaces_previous_state(self):
        filt = StopWordFilter(top_k=1).fit([["x", "x"]])
        filt.fit([["y", "y"]])
        assert filt.stop_words == {"y"}

    def test_top_k_larger_than_vocabulary(self):
        filt = StopWordFilter(top_k=100).fit([["a", "b"]])
        assert filt.stop_words == {"a", "b"}


class TestCleanForLangdetect:
    def test_strips_decorations(self):
        cleaned = clean_for_langdetect("hello #tag @user http://t.co/x :) world ?")
        assert cleaned == "hello world"

    def test_plain_text_untouched_modulo_case(self):
        assert clean_for_langdetect("Bonjour Monde") == "bonjour monde"

    def test_empty(self):
        assert clean_for_langdetect("") == ""


class TestPreprocessor:
    def test_default_pipeline(self):
        pre = Preprocessor.default(top_k_stop_words=1)
        pre.fit(["the cat", "the dog", "the bird"])
        assert pre("the cat runs") == ["cat", "runs"]

    def test_keeps_special_tokens(self):
        pre = Preprocessor.default(top_k_stop_words=0)
        pre.fit(["anything"])
        tokens = pre("go #edbt @alice :)")
        assert "#edbt" in tokens
        assert "@alice" in tokens
        assert ":)" in tokens

    def test_squeezes_lengthening(self):
        pre = Preprocessor.default(top_k_stop_words=0)
        pre.fit(["x"])
        assert pre("yeeees") == ["yees"]
