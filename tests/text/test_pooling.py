"""Tests for the NP/UP/HP pooling schemes."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.pooling import PoolingScheme, pool_documents

DOCS = [
    ["hello", "#a", "world"],
    ["more", "text"],
    ["tagged", "#a", "#b"],
    ["plain"],
]
USERS = ["u1", "u2", "u1", "u2"]


class TestNoPooling:
    def test_one_pool_per_tweet(self):
        pools = pool_documents(DOCS, PoolingScheme.NONE)
        assert len(pools) == len(DOCS)
        assert [list(p.tokens) for p in pools] == DOCS

    def test_source_indices_identity(self):
        pools = pool_documents(DOCS, PoolingScheme.NONE)
        assert [p.source_indices for p in pools] == [(0,), (1,), (2,), (3,)]


class TestUserPooling:
    def test_groups_by_user(self):
        pools = pool_documents(DOCS, PoolingScheme.USER, user_ids=USERS)
        by_key = {p.key: p for p in pools}
        assert set(by_key) == {"u1", "u2"}
        assert list(by_key["u1"].tokens) == DOCS[0] + DOCS[2]
        assert list(by_key["u2"].tokens) == DOCS[1] + DOCS[3]

    def test_requires_user_ids(self):
        with pytest.raises(ValueError):
            pool_documents(DOCS, PoolingScheme.USER)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pool_documents(DOCS, PoolingScheme.USER, user_ids=["u1"])

    def test_every_tweet_in_exactly_one_pool(self):
        pools = pool_documents(DOCS, PoolingScheme.USER, user_ids=USERS)
        indices = sorted(i for p in pools for i in p.source_indices)
        assert indices == [0, 1, 2, 3]


class TestHashtagPooling:
    def test_groups_by_hashtag(self):
        pools = pool_documents(DOCS, PoolingScheme.HASHTAG)
        by_key = {p.key: p for p in pools}
        assert "#a" in by_key and "#b" in by_key
        assert by_key["#a"].source_indices == (0, 2)
        assert by_key["#b"].source_indices == (2,)

    def test_untagged_tweets_stay_individual(self):
        pools = pool_documents(DOCS, PoolingScheme.HASHTAG)
        individual = [p for p in pools if p.key in {"1", "3"}]
        assert len(individual) == 2

    def test_multi_tag_tweet_contributes_to_all_pools(self):
        pools = pool_documents(DOCS, PoolingScheme.HASHTAG)
        containing_2 = [p for p in pools if 2 in p.source_indices]
        assert len(containing_2) == 2  # #a and #b


class TestPoolingProperties:
    token = st.sampled_from(["w1", "w2", "#h1", "#h2"])
    docs_strategy = st.lists(st.lists(token, max_size=5), min_size=1, max_size=10)

    @given(docs_strategy)
    def test_np_and_up_preserve_token_mass(self, docs):
        users = [f"u{i % 3}" for i in range(len(docs))]
        total = sum(len(d) for d in docs)
        for scheme, kwargs in [
            (PoolingScheme.NONE, {}),
            (PoolingScheme.USER, {"user_ids": users}),
        ]:
            pools = pool_documents(docs, scheme, **kwargs)
            assert sum(len(p) for p in pools) == total

    @given(docs_strategy)
    def test_hp_covers_every_document(self, docs):
        pools = pool_documents(docs, PoolingScheme.HASHTAG)
        covered = {i for p in pools for i in p.source_indices}
        assert covered == set(range(len(docs)))
