"""Tests for the Vocabulary mapping."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EmptyCorpusError
from repro.text.vocabulary import Vocabulary


class TestConstruction:
    def test_assigns_dense_ids(self):
        vocab = Vocabulary(["a", "b", "c"])
        assert [vocab.id_of(t) for t in "abc"] == [0, 1, 2]

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Vocabulary(["a", "a"])

    def test_from_documents_orders_by_frequency(self):
        vocab = Vocabulary.from_documents([["b", "b", "a"], ["b", "a", "c"]])
        assert vocab.term_of(0) == "b"  # most frequent first
        assert vocab.term_of(1) == "a"

    def test_min_count_filters(self):
        vocab = Vocabulary.from_documents([["a", "a", "b"]], min_count=2)
        assert "a" in vocab
        assert "b" not in vocab

    def test_max_terms_truncates_keeping_frequent(self):
        vocab = Vocabulary.from_documents([["a"] * 3 + ["b"] * 2 + ["c"]], max_terms=2)
        assert set(vocab) == {"a", "b"}

    def test_empty_corpus_raises(self):
        with pytest.raises(EmptyCorpusError):
            Vocabulary.from_documents([])

    def test_tie_broken_lexicographically(self):
        vocab = Vocabulary.from_documents([["z", "a"]])
        assert vocab.term_of(0) == "a"


class TestLookups:
    @pytest.fixture()
    def vocab(self) -> Vocabulary:
        return Vocabulary(["x", "y"])

    def test_roundtrip(self, vocab):
        for term in vocab:
            assert vocab.term_of(vocab.id_of(term)) == term

    def test_id_of_missing_raises(self, vocab):
        with pytest.raises(KeyError):
            vocab.id_of("missing")

    def test_get_default(self, vocab):
        assert vocab.get("missing") is None
        assert vocab.get("missing", -1) == -1

    def test_contains(self, vocab):
        assert "x" in vocab
        assert "z" not in vocab

    def test_len(self, vocab):
        assert len(vocab) == 2

    def test_encode_drops_oov(self, vocab):
        assert vocab.encode(["x", "nope", "y"]) == [0, 1]


class TestProperties:
    @given(st.lists(st.lists(st.sampled_from("abcdef"), max_size=8), min_size=1, max_size=10))
    def test_encode_roundtrip_identity(self, docs):
        vocab = Vocabulary.from_documents(docs)
        for doc in docs:
            decoded = [vocab.term_of(i) for i in vocab.encode(doc)]
            assert decoded == list(doc)  # nothing dropped: all terms kept

    @given(st.lists(st.lists(st.sampled_from("abc"), max_size=6), min_size=1, max_size=8),
           st.integers(1, 4))
    def test_min_count_subset(self, docs, min_count):
        full = Vocabulary.from_documents(docs) if any(docs) else None
        if full is None:
            return
        filtered = Vocabulary.from_documents(docs, min_count=min_count)
        assert set(filtered) <= set(full)
