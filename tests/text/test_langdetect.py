"""Tests for the character n-gram language detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EmptyCorpusError, NotFittedError
from repro.text.langdetect import LanguageDetector


@pytest.fixture(scope="module")
def detector(two_language_inventory):
    rng = np.random.default_rng(0)
    samples = {
        name: two_language_inventory.sample_texts(name, 40, 8, rng)
        for name in two_language_inventory.language_names
    }
    return LanguageDetector().fit(samples)


class TestFitValidation:
    def test_empty_samples_raise(self):
        with pytest.raises(EmptyCorpusError):
            LanguageDetector().fit({})

    def test_language_without_text_raises(self):
        with pytest.raises(EmptyCorpusError):
            LanguageDetector().fit({"x": [""]})

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            LanguageDetector(n=0)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            LanguageDetector(smoothing=0.0)


class TestDetection:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LanguageDetector().detect("hello")

    def test_languages_listed(self, detector):
        assert detector.languages == ("alpha", "beta")

    def test_detects_each_language(self, detector, two_language_inventory):
        rng = np.random.default_rng(42)
        for name in two_language_inventory.language_names:
            texts = two_language_inventory.sample_texts(name, 10, 10, rng)
            hits = sum(detector.detect(t) == name for t in texts)
            assert hits >= 8, f"detector failed on {name}: {hits}/10"

    def test_empty_text_returns_none(self, detector):
        assert detector.detect("") is None
        assert detector.detect(" ") is None

    def test_scores_are_log_likelihoods(self, detector):
        scores = detector.scores("babebi")
        assert set(scores) == {"alpha", "beta"}
        assert all(s <= 0 for s in scores.values())

    def test_detect_matches_argmax_of_scores(self, detector):
        text = "babebi kuklu"
        scores = detector.scores(text)
        assert detector.detect(text) == max(scores, key=lambda k: (scores[k], k))


class TestRealScripts:
    def test_separates_latin_from_cjk(self):
        detector = LanguageDetector().fit({
            "latin": ["hello world how are you", "the quick brown fox"],
            "cjk": ["こんにちは世界", "ありがとうございます"],
        })
        assert detector.detect("good morning world") == "latin"
        assert detector.detect("こんばんは") == "cjk"
