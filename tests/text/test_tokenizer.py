"""Tests for the tweet-aware tokenizer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenizer import EMOTICONS, TweetTokenizer, squeeze_repeats


@pytest.fixture()
def tokenizer() -> TweetTokenizer:
    return TweetTokenizer()


class TestBasicTokenization:
    def test_splits_on_whitespace(self, tokenizer):
        assert tokenizer("hello world") == ["hello", "world"]

    def test_lowercases(self, tokenizer):
        assert tokenizer("Hello WORLD") == ["hello", "world"]

    def test_lowercase_disabled(self):
        tok = TweetTokenizer(lowercase=False)
        assert tok("Hello") == ["Hello"]

    def test_splits_on_punctuation(self, tokenizer):
        assert tokenizer("hello,world.again") == ["hello", "world", "again"]

    def test_empty_string(self, tokenizer):
        assert tokenizer("") == []

    def test_whitespace_only(self, tokenizer):
        assert tokenizer("  \t\n ") == []

    def test_unicode_words_survive(self, tokenizer):
        # CJK-like scripts are \w in Python's re, so a spaceless sentence
        # becomes a single token -- the C3 tokenization hazard.
        tokens = tokenizer("こんにちは世界")
        assert tokens == ["こんにちは世界"]


class TestSpecialTokens:
    def test_hashtag_kept_together(self, tokenizer):
        assert tokenizer("i love #edbt conference") == ["i", "love", "#edbt", "conference"]

    def test_mention_kept_together(self, tokenizer):
        assert tokenizer("cc @alice_b hello") == ["cc", "@alice_b", "hello"]

    def test_url_kept_together(self, tokenizer):
        tokens = tokenizer("read http://t.co/abc123 now")
        assert "http://t.co/abc123" in tokens

    def test_www_url_kept_together(self, tokenizer):
        tokens = tokenizer("see www.example.com/page today")
        assert any(t.startswith("www.example.com") for t in tokens)

    @pytest.mark.parametrize("emoticon", [":)", ":(", ";)", "<3", ":/"])
    def test_emoticons_survive(self, tokenizer, emoticon):
        assert emoticon in tokenizer(f"nice day {emoticon} indeed")

    def test_question_mark_kept(self, tokenizer):
        # "?" is one of the Labeled LDA labels, so it must survive.
        assert "?" in tokenizer("really ?")

    def test_other_punctuation_dropped(self, tokenizer):
        assert tokenizer("wow !!! ...") == ["wow"]


class TestSqueezing:
    def test_emphatic_lengthening_squeezed(self, tokenizer):
        assert tokenizer("yeeeees") == ["yees"]

    def test_double_letters_kept(self, tokenizer):
        # Runs of exactly two are legitimate spelling ("good", "seen").
        assert tokenizer("good seen") == ["good", "seen"]

    def test_hashtags_not_squeezed(self, tokenizer):
        assert tokenizer("#loool") == ["#loool"]

    def test_urls_not_squeezed(self, tokenizer):
        tokens = tokenizer("http://t.co/aaa111")
        assert tokens == ["http://t.co/aaa111"]

    def test_squeeze_disabled(self):
        tok = TweetTokenizer(squeeze=False)
        assert tok("yeeeees") == ["yeeeees"]


class TestSqueezeRepeatsFunction:
    def test_caps_runs(self):
        assert squeeze_repeats("aaaa") == "aa"

    def test_max_run_one(self):
        assert squeeze_repeats("aaaa", max_run=1) == "a"

    def test_invalid_max_run(self):
        with pytest.raises(ValueError):
            squeeze_repeats("abc", max_run=0)

    @given(st.text(alphabet="abc", max_size=30), st.integers(1, 3))
    def test_never_longer_and_no_long_runs(self, text, max_run):
        out = squeeze_repeats(text, max_run=max_run)
        assert len(out) <= len(text)
        for i in range(len(out) - max_run):
            run = out[i : i + max_run + 1]
            assert len(set(run)) > 1  # no run exceeds max_run

    @given(st.text(alphabet="abcde", max_size=30))
    def test_idempotent(self, text):
        once = squeeze_repeats(text)
        assert squeeze_repeats(once) == once


class TestTokenizerProperties:
    @given(st.text(max_size=200))
    def test_never_crashes_and_tokens_nonempty(self, text):
        tokens = TweetTokenizer()(text)
        assert all(isinstance(t, str) and t for t in tokens)

    @given(st.lists(st.sampled_from(list(EMOTICONS)), min_size=1, max_size=5))
    def test_all_emoticons_roundtrip(self, emoticons):
        text = " ".join(emoticons)
        assert TweetTokenizer()(text) == emoticons
