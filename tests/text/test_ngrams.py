"""Tests for n-gram extraction."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.ngrams import char_ngrams, ngram_counts, token_ngrams


class TestTokenNGrams:
    def test_unigrams_are_tokens(self):
        assert token_ngrams(["a", "b", "c"], 1) == ["a", "b", "c"]

    def test_bigrams(self):
        assert token_ngrams(["bob", "sues", "jim"], 2) == ["bob sues", "sues jim"]

    def test_order_matters(self):
        assert token_ngrams(["a", "b"], 2) != token_ngrams(["b", "a"], 2)

    def test_short_sequence_yields_nothing(self):
        assert token_ngrams(["only"], 2) == []

    def test_empty_sequence(self):
        assert token_ngrams([], 1) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            token_ngrams(["a"], 0)

    @given(st.lists(st.text(alphabet="ab", min_size=1, max_size=3), max_size=15),
           st.integers(1, 4))
    def test_count_formula(self, tokens, n):
        grams = token_ngrams(tokens, n)
        assert len(grams) == max(0, len(tokens) - n + 1)


class TestCharNGrams:
    def test_bigrams(self):
        assert char_ngrams("tweet", 2) == ["tw", "we", "ee", "et"]

    def test_n_equals_length(self):
        assert char_ngrams("abc", 3) == ["abc"]

    def test_n_longer_than_text(self):
        assert char_ngrams("ab", 3) == []

    def test_empty_text(self):
        assert char_ngrams("", 2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", 0)

    def test_misspelling_shares_most_bigrams(self):
        # The robustness-to-noise argument for character models (paper
        # Section 3.1): "tweet" vs "twete" share most bigrams.
        a = set(char_ngrams("tweet", 2))
        b = set(char_ngrams("twete", 2))
        assert len(a & b) >= 3

    @given(st.text(max_size=40), st.integers(1, 5))
    def test_every_gram_has_length_n(self, text, n):
        assert all(len(g) == n for g in char_ngrams(text, n))


class TestNGramCounts:
    def test_counts(self):
        counts = ngram_counts(["a", "b", "a"])
        assert counts["a"] == 2
        assert counts["b"] == 1

    @given(st.lists(st.sampled_from("abcd"), max_size=30))
    def test_total_preserved(self, grams):
        # integer n-gram counts: exact in any order
        assert sum(ngram_counts(grams).values()) == len(grams)  # repro: allow[RPR002]
