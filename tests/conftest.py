"""Shared fixtures: tiny corpora and a small simulated dataset.

Dataset generation and pipeline evaluation are the expensive parts, so
the fixtures are session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.models.base import TextDoc
from repro.twitter.dataset import DatasetConfig, generate_dataset, select_user_groups
from repro.twitter.language import LanguageInventory, SyntheticLanguage


@pytest.fixture(scope="session")
def tiny_corpus() -> list[TextDoc]:
    """Six tokenized documents over two obvious themes (pets, markets)."""
    texts = [
        "the cat sat on the mat",
        "dogs chase cats in the park",
        "stock market rallies today",
        "the market closed higher today",
        "cats and dogs are pets",
        "traders watch the stock ticker",
    ]
    return [TextDoc.from_tokens(tuple(t.split())) for t in texts]


@pytest.fixture(scope="session")
def tiny_user_ids() -> list[str]:
    """Authors for :func:`tiny_corpus` (two users, one per theme-ish)."""
    return ["u1", "u1", "u2", "u2", "u1", "u2"]


@pytest.fixture(scope="session")
def small_dataset():
    """A small but complete simulated dataset (24 users, 80 ticks)."""
    return generate_dataset(DatasetConfig(n_users=24, n_ticks=80, seed=11))


@pytest.fixture(scope="session")
def small_groups(small_dataset):
    return select_user_groups(small_dataset, group_size=5, min_retweets=5)


@pytest.fixture(scope="session")
def two_language_inventory() -> LanguageInventory:
    """A 2-language, 4-topic inventory for fast language-level tests."""
    langs = (
        (SyntheticLanguage("alpha", "bcdfgh", "aeiou"), 0.7),
        (SyntheticLanguage("beta", "klmnpr", "aiu"), 0.3),
    )
    return LanguageInventory(
        languages=langs, n_topics=4, words_per_topic=30, n_common_words=10, seed=5
    )
