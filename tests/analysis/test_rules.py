"""Per-rule fixtures: each rule fires on the bug it protects against
(with the right rule id, file and line) and stays quiet on clean code.

These are the mutation smoke-tests promised by docs/LINT.md: every
fixture in a ``flags_*`` test is a minimal reintroduction of the class
of bug the rule exists to block.
"""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source
from repro.analysis.base import RULE_REGISTRY, default_rules

LIB_PATH = "src/repro/fake_module.py"  # library-only rules apply here
APP_PATH = "scripts/fake_script.py"  # ... and not here


def lint(source: str, path: str = LIB_PATH):
    return lint_source(textwrap.dedent(source), path)


def rules_hit(source: str, path: str = LIB_PATH) -> list[str]:
    return [v.rule for v in lint(source, path).violations]


class TestRegistry:
    def test_all_six_rules_registered(self):
        expected = {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"}
        assert expected <= set(RULE_REGISTRY)

    def test_default_rules_sorted_by_id(self):
        ids = [rule.id for rule in default_rules()]
        assert ids == sorted(ids)

    def test_rule_metadata_complete(self):
        for rule in default_rules():
            assert rule.id.startswith("RPR")
            assert rule.name and rule.summary and rule.invariant


class TestSeededRng:
    def test_flags_unseeded_default_rng(self):
        report = lint(
            """
            import numpy as np
            rng = np.random.default_rng()
            """
        )
        (violation,) = report.violations
        assert violation.rule == "RPR001"
        assert violation.path == LIB_PATH
        assert violation.line == 3
        assert "seed" in violation.message

    def test_flags_global_state_calls(self):
        assert rules_hit(
            """
            import numpy as np
            import random
            x = np.random.shuffle([1, 2])
            y = random.randint(0, 5)
            """
        ) == ["RPR001", "RPR001"]

    def test_seeded_constructions_are_clean(self):
        assert rules_hit(
            """
            import numpy as np
            from numpy.random import default_rng
            a = np.random.default_rng(42)
            b = np.random.default_rng(seed=7)
            c = default_rng(0)
            """
        ) == []

    def test_resolves_through_aliases(self):
        assert rules_hit(
            """
            from numpy.random import default_rng as make_rng
            rng = make_rng()
            """
        ) == ["RPR001"]

    def test_library_only(self):
        source = """
        import numpy as np
        rng = np.random.default_rng()
        """
        assert rules_hit(source, path=APP_PATH) == []


class TestOrderedAccumulation:
    def test_flags_sum_over_set(self):
        (violation,) = lint("total = sum({1.0, 2.0, 3.0})\n").violations
        assert violation.rule == "RPR002"
        assert violation.line == 1

    def test_flags_sum_over_dict_values(self):
        assert rules_hit("total = sum(scores.values())\n") == ["RPR002"]

    def test_flags_comprehension_over_set(self):
        assert rules_hit("total = sum(x * 2 for x in {1.0, 2.0})\n") == ["RPR002"]

    def test_flags_augmented_loop_over_values(self):
        assert rules_hit(
            """
            total = 0.0
            for ap in scores.values():
                total += ap
            """
        ) == ["RPR002"]

    def test_flags_map_over_raw_dict_values(self):
        # The historical bug: MAP off a journal-restored dict's values.
        assert rules_hit(
            "score = mean_average_precision(list(per_user.values()))\n"
        ) == ["RPR002"]

    def test_sorted_values_are_clean(self):
        assert rules_hit(
            """
            total = sum(scores[k] for k in sorted(scores))
            score = mean_average_precision(sorted(per_user.values()))
            """
        ) == []

    def test_applies_outside_library_too(self):
        assert rules_hit("total = sum(scores.values())\n", path=APP_PATH) == [
            "RPR002"
        ]


class TestWallClock:
    def test_flags_time_time(self):
        (violation,) = lint(
            """
            import time
            stamp = time.time()
            """
        ).violations
        assert violation.rule == "RPR003"
        assert violation.line == 3

    def test_flags_datetime_now(self):
        assert rules_hit(
            """
            from datetime import datetime
            stamp = datetime.now()
            """
        ) == ["RPR003"]

    def test_perf_counter_allowed(self):
        assert rules_hit(
            """
            import time
            t0 = time.perf_counter()
            """
        ) == []

    def test_reachable_from_cache_key_gets_stern_message(self):
        report = lint(
            """
            import time

            def _stamp():
                return time.time()

            def artifact_key(params):
                return (params, _stamp())
            """
        )
        (violation,) = report.violations
        assert violation.rule == "RPR003"
        assert "cache-key" in violation.message
        assert "_stamp" in violation.message

    def test_unreachable_read_gets_plain_message(self):
        report = lint(
            """
            import time

            def emit():
                return time.time()
            """
        )
        (violation,) = report.violations
        assert "cache-key" not in violation.message

    def test_library_only(self):
        source = """
        import time
        stamp = time.time()
        """
        assert rules_hit(source, path=APP_PATH) == []


class TestErrorTaxonomy:
    def test_flags_bare_value_error(self):
        (violation,) = lint(
            """
            def f(n):
                if n < 0:
                    raise ValueError("negative")
            """
        ).violations
        assert violation.rule == "RPR004"
        assert violation.line == 4
        assert "ValidationError" in violation.message

    def test_flags_runtime_error_and_exception(self):
        assert rules_hit(
            """
            raise RuntimeError("boom")
            raise Exception("worse")
            """
        ) == ["RPR004", "RPR004"]

    def test_taxonomy_types_are_clean(self):
        assert rules_hit(
            """
            from repro.errors import ValidationError

            def f(n):
                raise ValidationError("negative")
            """
        ) == []

    def test_imported_name_shadowing_builtin_is_clean(self):
        # A name bound by an import is not the builtin.
        assert rules_hit(
            """
            from mypkg.errors import ValueError
            raise ValueError("actually a custom type")
            """
        ) == []

    def test_bare_reraise_is_clean(self):
        assert rules_hit(
            """
            try:
                f()
            except KeyError:
                raise
            """
        ) == []

    def test_library_only(self):
        assert rules_hit('raise ValueError("x")\n', path=APP_PATH) == []


class TestSpanHygiene:
    def test_flags_span_outside_with(self):
        (violation,) = lint(
            """
            def run(tracer):
                tracer.span("train")
            """
        ).violations
        assert violation.rule == "RPR005"
        assert violation.line == 3

    def test_with_statement_is_clean(self):
        assert rules_hit(
            """
            def run(tracer):
                with tracer.span("train"):
                    pass
            """
        ) == []

    def test_delegating_span_facade_is_clean(self):
        # Telemetry.span forwards to its tracer: allowed.
        assert rules_hit(
            """
            class Telemetry:
                def span(self, name):
                    return self.tracer.span(name)
            """
        ) == []

    def test_non_delegating_return_still_flagged(self):
        assert rules_hit(
            """
            def start(tracer):
                return tracer.span("leaked")
            """
        ) == ["RPR005"]


class TestResourceSpanLeak:
    def test_flags_sampler_outside_with(self):
        (violation,) = lint(
            """
            from repro.obs.resources import ResourceSampler

            def run():
                sampler = ResourceSampler()
                return sampler
            """
        ).violations
        assert violation.rule == "RPR007"
        assert violation.line == 5

    def test_with_statement_is_clean(self):
        assert rules_hit(
            """
            from repro.obs import ResourceSampler

            def run():
                with ResourceSampler(interval=0.01) as sampler:
                    return sampler.watch()
            """
        ) == []

    def test_enter_context_is_clean(self):
        assert rules_hit(
            """
            from repro.obs.resources import ResourceSampler

            def run(stack):
                return stack.enter_context(ResourceSampler())
            """
        ) == []

    def test_aliased_import_still_flagged(self):
        assert rules_hit(
            """
            from repro.obs import resources

            def run():
                return resources.ResourceSampler()
            """
        ) == ["RPR007"]

    def test_delegating_factory_is_clean(self):
        # Mirrors RPR005: a function named for delegation may return an
        # un-entered sampler for its caller to enter.
        assert rules_hit(
            """
            from repro.obs.resources import ResourceSampler

            def resource_sampler(interval):
                return ResourceSampler(interval=interval)
            """
        ) == []

    def test_non_delegating_return_still_flagged(self):
        assert rules_hit(
            """
            from repro.obs.resources import ResourceSampler

            def start():
                return ResourceSampler()
            """
        ) == ["RPR007"]


class TestProfilerHygiene:
    def test_flags_sampler_outside_with(self):
        (violation,) = lint(
            """
            from repro.obs.profiler import StackSampler

            def run():
                sampler = StackSampler(hz=97.0)
                return sampler
            """
        ).violations
        assert violation.rule == "RPR014"
        assert violation.line == 5

    def test_with_statement_is_clean(self):
        assert rules_hit(
            """
            from repro.obs import StackSampler

            def run():
                with StackSampler(hz=97.0) as sampler:
                    return sampler.profile
            """
        ) == []

    def test_enter_context_is_clean(self):
        assert rules_hit(
            """
            from repro.obs.profiler import StackSampler

            def run(stack):
                return stack.enter_context(StackSampler())
            """
        ) == []

    def test_aliased_import_still_flagged(self):
        assert rules_hit(
            """
            from repro.obs import profiler

            def run():
                return profiler.StackSampler()
            """
        ) == ["RPR014"]

    def test_delegating_factory_is_clean(self):
        # Mirrors RPR005/RPR007: a function named for delegation may
        # return an un-entered sampler for its caller to enter.
        assert rules_hit(
            """
            from repro.obs.profiler import StackSampler

            def stack_sampler(hz):
                return StackSampler(hz=hz)
            """
        ) == []

    def test_non_delegating_return_still_flagged(self):
        assert rules_hit(
            """
            from repro.obs.profiler import StackSampler

            def start():
                return StackSampler()
            """
        ) == ["RPR014"]

    def test_pragma_suppresses(self):
        assert rules_hit(
            """
            from repro.obs.profiler import StackSampler

            def start():
                return StackSampler()  # repro: allow[RPR014] -- test fixture keeps a raw sampler
            """
        ) == []


class TestPicklableSpec:
    def test_flags_callable_field(self):
        (violation,) = lint(
            """
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class SweepSpec:
                scorer: Callable[[int], float]
            """
        ).violations
        assert violation.rule == "RPR006"
        assert violation.line == 7
        assert "scorer" in violation.message

    def test_flags_string_annotation(self):
        assert rules_hit(
            """
            from dataclasses import dataclass

            @dataclass
            class JobSpec:
                hook: "Callable[[], None]"
            """
        ) == ["RPR006"]

    def test_flags_lambda_default(self):
        assert rules_hit(
            """
            from dataclasses import dataclass, field

            @dataclass
            class GridSpec:
                a: object = lambda: 1
                b: object = field(default=lambda: 2)
            """
        ) == ["RPR006", "RPR006"]

    def test_flags_local_spec_class(self):
        report = lint(
            """
            from dataclasses import dataclass

            def build():
                @dataclass
                class LocalSpec:
                    n: int
                return LocalSpec(1)
            """
        )
        (violation,) = report.violations
        assert violation.rule == "RPR006"
        assert "local" in violation.message

    def test_plain_fields_and_non_spec_classes_clean(self):
        assert rules_hit(
            """
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class SweepSpec:
                name: str
                seeds: tuple

            @dataclass
            class NotASpecHolder:
                fn: Callable[[], None]
            """
        ) == []


class TestUnboundedWait:
    EXEC_PATH = "src/repro/experiments/fake_executor.py"

    def test_flags_bare_get_join_result(self):
        report = lint(
            """
            def supervise(task_queue, process, future):
                blob = task_queue.get()
                process.join()
                return future.result()
            """,
            path=self.EXEC_PATH,
        )
        assert [v.rule for v in report.violations] == ["RPR008"] * 3
        assert all(v.path == self.EXEC_PATH for v in report.violations)
        assert "timeout" in report.violations[0].message

    def test_bounded_and_nonblocking_waits_clean(self):
        assert rules_hit(
            """
            def supervise(task_queue, result_queue, process, future):
                a = task_queue.get(timeout=1.0)
                b = result_queue.get_nowait()
                c = result_queue.get(block=False)
                process.join(timeout=0.5)
                return future.result(timeout=30), a, b, c
            """,
            path=self.EXEC_PATH,
        ) == []

    def test_lookalike_methods_clean(self):
        # mapping.get(key) and separator.join(parts) share names with
        # the blocking calls but always take positional arguments.
        assert rules_hit(
            """
            def render(mapping, parts):
                value = mapping.get("key")
                return ", ".join(parts), value
            """,
            path=self.EXEC_PATH,
        ) == []

    def test_scoped_to_the_executor_layer(self):
        source = """
            def wait(process):
                process.join()
            """
        assert rules_hit(source, path=LIB_PATH) == []
        assert rules_hit(source, path=APP_PATH) == []
        assert rules_hit(source, path=self.EXEC_PATH) == ["RPR008"]

    def test_pragma_suppresses_with_justification(self):
        assert rules_hit(
            """
            def drain(result_queue):
                return result_queue.get()  # repro: allow[RPR008] -- final drain after all workers joined
            """,
            path=self.EXEC_PATH,
        ) == []


class TestEventLogProgress:
    EXEC_PATH = "src/repro/experiments/fake_runner.py"

    def test_flags_print_in_the_sweep_machinery(self):
        report = lint(
            """
            def announce(cell):
                print(f"done {cell}")
            """,
            path=self.EXEC_PATH,
        )
        (violation,) = report.violations
        assert violation.rule == "RPR009"
        assert violation.path == self.EXEC_PATH
        assert violation.line == 3
        assert "EventLog.emit" in violation.message

    def test_flags_sys_stream_writes(self):
        report = lint(
            """
            import sys

            def announce(cell):
                sys.stderr.write(f"done {cell}\\n")
                sys.stdout.writelines([f"{cell}\\n"])
            """,
            path=self.EXEC_PATH,
        )
        assert [v.rule for v in report.violations] == ["RPR009"] * 2
        assert "sys.stderr.write" in report.violations[0].message

    def test_event_emission_and_file_writes_clean(self):
        assert rules_hit(
            """
            def announce(events, stream, record):
                events.emit("cell_joined", cell=record["cell"])
                stream.write("journal line\\n")
            """,
            path=self.EXEC_PATH,
        ) == []

    def test_scoped_to_the_experiments_package(self):
        source = """
            def announce(cell):
                print(f"done {cell}")
            """
        # Console rendering is legal in the obs sinks, the CLI and
        # anywhere outside src/repro -- only the sweep machinery is held
        # to event emission.
        assert rules_hit(source, path="src/repro/obs/progress.py") == []
        assert rules_hit(source, path="src/repro/cli.py") == []
        assert rules_hit(source, path=APP_PATH) == []
        assert rules_hit(source, path=self.EXEC_PATH) == ["RPR009"]

    def test_pragma_suppresses_with_justification(self):
        assert rules_hit(
            """
            def announce(cell):
                print(f"done {cell}")  # repro: allow[RPR009] -- interactive debug helper, never imported by the runner
            """,
            path=self.EXEC_PATH,
        ) == []


class TestProfileArtifactMutation:
    """RPR010: profile artifacts change only through the update protocol."""

    def test_flags_subscript_assignment(self):
        report = lint(
            """
            def patch(artifact, uid, profile):
                artifact.profiles[uid] = profile
            """
        )
        (violation,) = report.violations
        assert violation.rule == "RPR010"
        assert violation.path == LIB_PATH
        assert violation.line == 3
        assert "ProfileState.update" in violation.message

    def test_flags_augmented_assignment_and_del(self):
        assert rules_hit(
            """
            def trim(artifact, uid):
                artifact.profiles[uid] += 1
                del artifact.profiles[uid]
            """
        ) == ["RPR010", "RPR010"]

    def test_flags_mutating_dict_methods(self):
        assert rules_hit(
            """
            def merge(artifact, extra, uid):
                artifact.profiles.update(extra)
                artifact.profiles.pop(uid)
                artifact.profiles.clear()
                artifact.profiles.setdefault(uid, {})
            """
        ) == ["RPR010"] * 4

    def test_flags_attribute_rebinds(self):
        assert rules_hit(
            """
            def swap(artifact, replacement):
                artifact.profiles = replacement
            """
        ) == ["RPR010"]

    def test_flags_tuple_unpacking_targets(self):
        assert rules_hit(
            """
            def unpack(artifact, uid, profile, other):
                artifact.profiles[uid], other = profile, None
            """
        ) == ["RPR010"]

    def test_local_profiles_dict_is_clean(self):
        # The builder's own dict under construction is the legitimate
        # way profiles come to exist; only artifact attributes are held
        # to immutability.
        assert rules_hit(
            """
            def build(model, users):
                profiles = {}
                for uid in users:
                    profiles[uid] = model.build_user_model(())
                profiles.update({})
                return profiles
            """
        ) == []

    def test_reading_profiles_is_clean(self):
        assert rules_hit(
            """
            def score(artifact, uid):
                profile = artifact.profiles[uid]
                return dict(artifact.profiles.items()), profile
            """
        ) == []

    def test_library_only(self):
        source = """
            def patch(artifact, uid, profile):
                artifact.profiles[uid] = profile
            """
        assert rules_hit(source, path=APP_PATH) == []
        assert rules_hit(source, path=LIB_PATH) == ["RPR010"]

    def test_pragma_suppresses_with_justification(self):
        assert rules_hit(
            """
            def patch(artifact, uid, profile):
                artifact.profiles[uid] = profile  # repro: allow[RPR010] -- migration shim for pre-protocol caches
            """
        ) == []
