"""Effect inference: direct classification and the transitive fixed point."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.effects import (
    EFFECTS,
    direct_effects,
    propagate_effects,
    witness_path,
)
from repro.analysis.names import ImportMap


def effects_of(source: str) -> set[str]:
    tree = ast.parse(textwrap.dedent(source))
    imports = ImportMap.from_tree(tree)
    func = next(
        node for node in tree.body if isinstance(node, ast.FunctionDef)
    )
    return {record["effect"] for record in direct_effects(func, imports)}


class TestDirectEffects:
    def test_unseeded_rng(self):
        assert effects_of(
            """
            import numpy as np
            def f():
                return np.random.default_rng()
            """
        ) == {"rng"}

    def test_seeded_rng_is_clean(self):
        assert effects_of(
            """
            import numpy as np
            def f(seed):
                return np.random.default_rng(seed)
            """
        ) == set()

    def test_wall_clock(self):
        assert effects_of(
            """
            import time
            def f():
                return time.time()
            """
        ) == {"wall_clock"}

    def test_monotonic_clock_is_clean(self):
        assert effects_of(
            """
            import time
            def f():
                return time.perf_counter()
            """
        ) == set()

    def test_io_builtin_and_method(self):
        assert effects_of(
            """
            def f(path):
                print("hi")
                return path.read_text()
            """
        ) == {"io"}

    def test_process_spawn(self):
        assert effects_of(
            """
            import subprocess
            def f():
                subprocess.run(["true"])
            """
        ) == {"process_spawn"}

    def test_unordered_float_sum(self):
        assert effects_of(
            """
            def f(scores):
                return sum(set(scores))
            """
        ) == {"set_iteration_float_sum"}

    def test_nested_def_effects_are_inlined(self):
        assert effects_of(
            """
            import time
            def f():
                def build():
                    return time.time()
                return build
            """
        ) == {"wall_clock"}

    def test_records_carry_positions(self):
        tree = ast.parse("import time\ndef f():\n    return time.time()\n")
        imports = ImportMap.from_tree(tree)
        [record] = direct_effects(tree.body[1], imports)
        assert record["line"] == 3
        assert record["sanctioned"] is False
        assert record["detail"] == "time.time"

    def test_vocabulary_is_closed(self):
        assert set(EFFECTS) >= {"rng", "wall_clock", "io",
                                "set_iteration_float_sum", "process_spawn",
                                "mutates_global"}


class TestPropagation:
    def test_two_hop_chain(self):
        direct = {
            "a": [],
            "b": [],
            "c": [{"effect": "rng", "sanctioned": False}],
        }
        edges = {"a": ["b"], "b": ["c"], "c": []}
        effects, witness = propagate_effects(direct, edges)
        assert effects["a"] == {"rng"}
        assert witness_path("a", "rng", witness) == ["a", "b", "c"]

    def test_cycle_terminates(self):
        direct = {
            "a": [{"effect": "io", "sanctioned": False}],
            "b": [],
        }
        edges = {"a": ["b"], "b": ["a"]}
        effects, _ = propagate_effects(direct, edges)
        assert effects["a"] == {"io"}
        assert effects["b"] == {"io"}

    def test_sanctioned_excluded_in_strict_mode(self):
        direct = {
            "a": [],
            "b": [{"effect": "wall_clock", "sanctioned": True}],
        }
        edges = {"a": ["b"], "b": []}
        lenient, _ = propagate_effects(direct, edges, include_sanctioned=True)
        strict, _ = propagate_effects(direct, edges, include_sanctioned=False)
        assert lenient["a"] == {"wall_clock"}
        assert strict["a"] == set()
        assert strict["b"] == set()

    def test_direct_effect_has_no_witness_step(self):
        direct = {"a": [{"effect": "rng", "sanctioned": False}]}
        _, witness = propagate_effects(direct, {"a": []})
        assert witness["a"]["rng"] is None
        assert witness_path("a", "rng", witness) == ["a"]

    def test_diamond_converges(self):
        direct = {
            "top": [],
            "left": [],
            "right": [],
            "bottom": [{"effect": "rng", "sanctioned": False}],
        }
        edges = {
            "top": ["left", "right"],
            "left": ["bottom"],
            "right": ["bottom"],
            "bottom": [],
        }
        effects, witness = propagate_effects(direct, edges)
        assert effects["top"] == {"rng"}
        path = witness_path("top", "rng", witness)
        assert path[0] == "top"
        assert path[-1] == "bottom"
