"""The whole-program call graph: summaries, resolution, roots, exports."""

from __future__ import annotations

import ast
import json
import textwrap

from repro.analysis.graph import (
    analysis_to_dot,
    analysis_to_json,
    build_analysis,
    summarize_module,
)


def build(tmp_path, files):
    """Write a file tree, summarise every module, assemble the analysis."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    summaries = [
        summarize_module(
            ast.parse((tmp_path / rel).read_text()), tmp_path / rel
        )
        for rel in files
    ]
    return build_analysis(summaries)


class TestCallResolution:
    def test_aliased_cross_module_call(self, tmp_path):
        analysis = build(
            tmp_path,
            {
                "util.py": """
                    def helper():
                        return 1
                    """,
                "a.py": """
                    import util as u
                    def go():
                        return u.helper()
                    """,
            },
        )
        assert analysis.edges["a.go"] == ("util.helper",)

    def test_reexport_through_init(self, tmp_path):
        analysis = build(
            tmp_path,
            {
                "pkg/__init__.py": "from pkg.impl import helper\n",
                "pkg/impl.py": """
                    def helper():
                        return 1
                    """,
                "main.py": """
                    from pkg import helper
                    def go():
                        return helper()
                    """,
            },
        )
        assert analysis.edges["main.go"] == ("pkg.impl.helper",)

    def test_method_resolved_through_mro(self, tmp_path):
        analysis = build(
            tmp_path,
            {
                "base.py": """
                    class Base:
                        def run(self):
                            return 1
                    """,
                "child.py": """
                    from base import Base
                    class Child(Base):
                        pass
                    """,
                "main.py": """
                    from child import Child
                    def go():
                        c = Child()
                        return c.run()
                    """,
            },
        )
        assert "base.Base.run" in analysis.edges["main.go"]

    def test_self_call_reaches_descendant_override(self, tmp_path):
        analysis = build(
            tmp_path,
            {
                "state.py": """
                    class State:
                        def update(self, docs):
                            return self._fold(docs)
                    """,
                "impl.py": """
                    import numpy as np
                    from state import State
                    class Impl(State):
                        def _fold(self, docs):
                            return np.random.default_rng()
                    """,
            },
        )
        assert analysis.edges["state.State.update"] == ("impl.Impl._fold",)
        # ... and the effect fixed point carries the override's rng
        # effect up into the abstract dispatcher.
        assert "rng" in analysis.effects["state.State.update"]

    def test_untyped_receiver_falls_back_to_name_match(self, tmp_path):
        analysis = build(
            tmp_path,
            {
                "sink.py": """
                    class Sink:
                        def absorb(self, item):
                            return item
                    """,
                "main.py": """
                    def go(x):
                        return x.absorb(1)
                    """,
            },
        )
        assert analysis.edges["main.go"] == ("sink.Sink.absorb",)

    def test_constructor_call_edges_to_init(self, tmp_path):
        analysis = build(
            tmp_path,
            {
                "thing.py": """
                    import time
                    class Thing:
                        def __init__(self):
                            self.ts = time.time()
                    """,
                "main.py": """
                    from thing import Thing
                    def go():
                        return Thing()
                    """,
            },
        )
        assert analysis.edges["main.go"] == ("thing.Thing.__init__",)
        assert "wall_clock" in analysis.effects["main.go"]

    def test_module_body_is_a_synthetic_function(self, tmp_path):
        analysis = build(
            tmp_path,
            {
                "boot.py": """
                    import time
                    STARTED = time.time()
                    """,
            },
        )
        assert "wall_clock" in analysis.effects["boot.<module>"]


class TestRoots:
    def test_stage_worker_and_profile_roots(self, tmp_path):
        analysis = build(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/core/__init__.py": "",
                "repro/core/stages.py": """
                    def artifact_key(**parts):
                        return parts
                    """,
                "repro/models.py": """
                    class ProfileState:
                        def update(self, docs):
                            return docs
                    class Sub(ProfileState):
                        def update(self, docs):
                            return docs
                    """,
                "repro/exec.py": """
                    import multiprocessing as mp
                    def _worker(q):
                        return q
                    def evaluate_cell(cell):
                        return cell
                    def start():
                        p = mp.Process(target=_worker, args=(1,))
                        return p
                    """,
            },
        )
        assert analysis.roots["stage"] == ("repro.core.stages.artifact_key",)
        assert set(analysis.roots["worker"]) == {
            "repro.exec._worker",
            "repro.exec.evaluate_cell",
        }
        assert set(analysis.roots["profile_update"]) == {
            "repro.models.ProfileState.update",
            "repro.models.Sub.update",
        }

    def test_reachability_paths(self, tmp_path):
        analysis = build(
            tmp_path,
            {
                "a.py": """
                    import b
                    def top():
                        return b.mid()
                    """,
                "b.py": """
                    import c
                    def mid():
                        return c.leaf()
                    """,
                "c.py": """
                    def leaf():
                        return 1
                    """,
            },
        )
        parents = analysis.reachable_from(["a.top"])
        assert analysis.call_path("c.leaf", parents) == [
            "a.top",
            "b.mid",
            "c.leaf",
        ]


class TestExports:
    def build_fixture(self, tmp_path):
        return build(
            tmp_path,
            {
                "util.py": """
                    import time
                    def stamp():
                        return time.time()
                    """,
                "main.py": """
                    import util
                    def go():
                        return util.stamp()
                    """,
            },
        )

    def test_json_round_trips(self, tmp_path):
        analysis = self.build_fixture(tmp_path)
        payload = json.loads(json.dumps(analysis_to_json(analysis)))
        assert payload["version"] == 1
        functions = {f["qualname"]: f for f in payload["functions"]}
        assert functions["main.go"]["calls"] == ["util.stamp"]
        assert functions["main.go"]["effects"] == ["wall_clock"]
        assert ["main.go", "util.stamp"] in payload["edges"]
        assert set(payload["roots"]) == {"stage", "worker", "profile_update"}

    def test_dot_is_graphviz_shaped(self, tmp_path):
        analysis = self.build_fixture(tmp_path)
        dot = analysis_to_dot(analysis)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"main.go" -> "util.stamp";' in dot
        assert "wall_clock" in dot


class TestSummaryRoundTrip:
    def test_module_summary_survives_dict_round_trip(self, tmp_path):
        source = textwrap.dedent(
            """
            import time
            CACHE = {}
            class Box:
                def __init__(self):
                    self.v = 1
            def put(k):
                CACHE[k] = time.time()
            """
        )
        path = tmp_path / "mod.py"
        path.write_text(source)
        from repro.analysis.graph import ModuleSummary

        summary = summarize_module(ast.parse(source), path)
        clone = ModuleSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert clone.module == summary.module
        assert clone.globals == {"CACHE": "mutable"}
        assert set(clone.functions) == set(summary.functions)
        assert clone.functions["mod.put"].mutations == (
            summary.functions["mod.put"].mutations
        )
