"""Engine behaviour: pragmas, unused-pragma reporting, file collection,
exit codes and error handling."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_paths, lint_source
from repro.analysis.engine import find_pragmas

LIB_PATH = "src/repro/fake_module.py"


def lint(source: str, path: str = LIB_PATH):
    return lint_source(textwrap.dedent(source), path)


class TestFindPragmas:
    def test_single_rule(self):
        (pragma,) = find_pragmas("x = 1  # repro: allow[RPR001]\n")
        assert pragma.line == 1
        assert pragma.rules == frozenset({"RPR001"})

    def test_multiple_rules_and_justification(self):
        (pragma,) = find_pragmas(
            "x = 1  # repro: allow[RPR002, RPR003] -- intentional timestamp\n"
        )
        assert pragma.rules == frozenset({"RPR002", "RPR003"})

    def test_pragma_text_inside_string_is_ignored(self):
        # Tokenising means pragma-shaped text in literals is inert --
        # otherwise this very test file would suppress rules.
        assert find_pragmas('x = "repro: allow[RPR001]"\n') == []

    def test_plain_comments_ignored(self):
        assert find_pragmas("x = 1  # ordinary comment\n") == []


class TestSuppression:
    def test_pragma_suppresses_matching_violation(self):
        report = lint(
            """
            import numpy as np
            rng = np.random.default_rng()  # repro: allow[RPR001] -- seeded by caller
            """
        )
        assert report.violations == []
        assert report.exit_code == 0

    def test_pragma_for_other_rule_does_not_suppress(self):
        report = lint(
            """
            import numpy as np
            rng = np.random.default_rng()  # repro: allow[RPR004]
            """
        )
        rules = {v.rule for v in report.violations}
        # The original violation survives AND the pragma is unused.
        assert rules == {"RPR001", "RPR900"}

    def test_pragma_on_any_line_of_multiline_statement(self):
        report = lint(
            """
            import time
            stamp = time.time(  # repro: allow[RPR003] -- telemetry timestamp
            )
            """
        )
        assert report.violations == []

    def test_unused_pragma_reported_as_rpr900(self):
        report = lint("x = 1  # repro: allow[RPR001]\n")
        (violation,) = report.violations
        assert violation.rule == "RPR900"
        assert violation.line == 1
        assert "suppresses nothing" in violation.message

    def test_round_trip_fix_then_remove_pragma(self):
        # The workflow RPR900 enforces: once the violation is fixed, the
        # stale pragma itself becomes a violation until removed.
        dirty = "total = sum(scores.values())  # repro: allow[RPR002]\n"
        assert lint_source(dirty, LIB_PATH).exit_code == 0
        fixed_but_stale = (
            "total = sum(scores[k] for k in sorted(scores))"
            "  # repro: allow[RPR002]\n"
        )
        report = lint_source(fixed_but_stale, LIB_PATH)
        assert [v.rule for v in report.violations] == ["RPR900"]
        clean = "total = sum(scores[k] for k in sorted(scores))\n"
        assert lint_source(clean, LIB_PATH).exit_code == 0


class TestExitCodes:
    def test_clean_source_exits_zero(self):
        assert lint("x = 1\n").exit_code == 0

    def test_violations_exit_one(self):
        assert lint("total = sum(s.values())\n").exit_code == 1

    def test_syntax_error_exits_two(self):
        report = lint("def broken(:\n")
        assert report.exit_code == 2
        assert report.violations == []
        assert "syntax error" in report.errors[0]

    def test_missing_path_exits_two(self, tmp_path):
        report = lint_paths([tmp_path / "nope.py"])
        assert report.exit_code == 2
        assert "no such file" in report.errors[0]


class TestLintPaths:
    def test_walks_directories_and_counts_files(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "clean.py").write_text("x = 1\n")
        (pkg / "dirty.py").write_text('raise ValueError("x")\n')
        (tmp_path / "notes.txt").write_text("not python\n")
        report = lint_paths([tmp_path])
        assert report.files_checked == 2
        assert [v.rule for v in report.violations] == ["RPR004"]

    def test_library_only_scoping_follows_path(self, tmp_path):
        outside = tmp_path / "tools"
        outside.mkdir()
        (outside / "script.py").write_text('raise ValueError("fine here")\n')
        assert lint_paths([outside]).exit_code == 0

    def test_duplicate_paths_deduplicated(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        report = lint_paths([target, target, tmp_path])
        assert report.files_checked == 1

    def test_violations_sorted_by_position(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "b.py").write_text('raise ValueError("late")\n')
        (pkg / "a.py").write_text(
            'import time\nt = time.time()\nraise ValueError("x")\n'
        )
        report = lint_paths([tmp_path])
        keys = [(v.path, v.line) for v in report.violations]
        assert keys == sorted(keys)
