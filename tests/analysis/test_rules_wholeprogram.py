"""RPR011/012/013: whole-program rules over multi-module fixtures.

Each rule gets a flagging fixture whose finding crosses at least two
call-graph hops over module boundaries (with the reported call path
asserted exactly) and a clean fixture that exercises the same shape
without the defect.
"""

from __future__ import annotations

import textwrap

from repro.analysis.base import PROGRAM_RULE_REGISTRY, RULE_REGISTRY
from repro.analysis.engine import lint_paths

PKG_INITS = {
    "src/repro/__init__.py": "",
    "src/repro/core/__init__.py": "",
    "src/repro/util/__init__.py": "",
}


def run_lint(tmp_path, files, program_rule_ids, file_rule_ids=()):
    for rel, source in {**PKG_INITS, **files}.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return lint_paths(
        [tmp_path / "src"],
        rules=[RULE_REGISTRY[i]() for i in file_rule_ids],
        program_rules=[PROGRAM_RULE_REGISTRY[i]() for i in program_rule_ids],
    )


class TestNondeterminismReachability:
    FLAGGING = {
        "src/repro/core/stages.py": """
            from repro.util.helpers import compute
            def fit_model(x):
                return compute(x)
            """,
        "src/repro/util/helpers.py": """
            from repro.util.deep import draw
            def compute(x):
                return draw(x)
            """,
        "src/repro/util/deep.py": """
            import numpy as np
            def draw(x):
                rng = np.random.default_rng()
                return x
            """,
    }

    def test_two_hop_cross_module_chain_flagged_with_path(self, tmp_path):
        report = run_lint(tmp_path, self.FLAGGING, ["RPR013"])
        [violation] = report.violations
        assert violation.rule == "RPR013"
        assert violation.path.endswith("deep.py")
        assert violation.line == 4  # the default_rng() line of the fixture
        assert violation.chain == (
            "repro.core.stages.fit_model",
            "repro.util.helpers.compute",
            "repro.util.deep.draw",
        )
        assert "call path:" in violation.format()

    def test_seeded_rng_is_clean(self, tmp_path):
        files = dict(self.FLAGGING)
        files["src/repro/util/deep.py"] = """
            import numpy as np
            def draw(x):
                rng = np.random.default_rng(7)
                return x
            """
        report = run_lint(tmp_path, files, ["RPR013"])
        assert report.violations == []

    def test_profile_update_is_a_root(self, tmp_path):
        files = {
            "src/repro/models.py": """
                import time
                class ProfileState:
                    def update(self, docs):
                        return self._fold(docs)
                class Impl(ProfileState):
                    def _fold(self, docs):
                        return time.time()
                """,
        }
        report = run_lint(tmp_path, files, ["RPR013"])
        [violation] = report.violations
        assert violation.chain[0] in (
            "repro.models.ProfileState.update",
            "repro.models.Impl.update",
        )
        assert violation.chain[-1] == "repro.models.Impl._fold"

    def test_origin_pragma_sanctions_the_effect(self, tmp_path):
        files = dict(self.FLAGGING)
        files["src/repro/util/deep.py"] = """
            import time
            def draw(x):
                ts = time.time()  # repro: allow[RPR003] -- telemetry stamp, not a model input
                return x
            """
        report = run_lint(
            tmp_path, files, ["RPR013"], file_rule_ids=["RPR003"]
        )
        assert report.violations == []

    def test_pragma_on_origin_suppresses_and_counts_as_used(self, tmp_path):
        files = dict(self.FLAGGING)
        files["src/repro/util/deep.py"] = """
            import numpy as np
            def draw(x):
                rng = np.random.default_rng()  # repro: allow[RPR013] -- fixture: chain verified by hand
                return x
            """
        report = run_lint(tmp_path, files, ["RPR013"])
        assert report.violations == []


class TestForkSafety:
    FLAGGING = {
        "src/repro/core/exec.py": """
            import multiprocessing as mp
            from repro.util.state import remember
            def _worker(q):
                return remember(q)
            def start():
                p = mp.Process(target=_worker, args=(1,))
                return p
            """,
        "src/repro/util/state.py": """
            _CACHE = {}
            def remember(q):
                _CACHE[q] = True
                return q
            """,
    }

    def test_worker_reachable_mutation_flagged_with_path(self, tmp_path):
        report = run_lint(tmp_path, self.FLAGGING, ["RPR012"])
        [violation] = report.violations
        assert violation.rule == "RPR012"
        assert violation.path.endswith("state.py")
        assert "_CACHE" in violation.message
        assert violation.chain == (
            "repro.core.exec._worker",
            "repro.util.state.remember",
        )

    def test_local_mutation_is_clean(self, tmp_path):
        files = dict(self.FLAGGING)
        files["src/repro/util/state.py"] = """
            def remember(q):
                cache = {}
                cache[q] = True
                return q
            """
        report = run_lint(tmp_path, files, ["RPR012"])
        assert report.violations == []

    def test_absorb_channel_is_exempt(self, tmp_path):
        files = dict(self.FLAGGING)
        files["src/repro/util/state.py"] = """
            _MERGED = {}
            class Telemetry:
                def absorb(self, q):
                    _MERGED[q] = True
                    return q
            def remember(q):
                t = Telemetry()
                return t.absorb(q)
            """
        report = run_lint(tmp_path, files, ["RPR012"])
        assert report.violations == []

    def test_unreached_mutation_is_clean(self, tmp_path):
        files = dict(self.FLAGGING)
        files["src/repro/core/exec.py"] = """
            from repro.util.state import remember
            def main_side_only(q):
                return remember(q)
            """
        report = run_lint(tmp_path, files, ["RPR012"])
        assert report.violations == []


class TestCacheKeyProvenance:
    def test_effectful_arg_call_flagged_with_two_hop_path(self, tmp_path):
        files = {
            "src/repro/core/keys.py": """
                from repro.util.stamp import describe
                def build(params):
                    return artifact_key(stage="fit", when=describe())
                """,
            "src/repro/util/stamp.py": """
                import time
                def describe():
                    return _now()
                def _now():
                    return time.time()
                """,
        }
        report = run_lint(tmp_path, files, ["RPR011"])
        [violation] = report.violations
        assert violation.rule == "RPR011"
        assert violation.path.endswith("keys.py")
        assert violation.chain == (
            "repro.core.keys.build",
            "repro.util.stamp.describe",
            "repro.util.stamp._now",
        )
        assert "wall-clock" in violation.message

    def test_mutable_global_read_flagged(self, tmp_path):
        files = {
            "src/repro/core/keys.py": """
                _EXTRA = {}
                def build(params):
                    return artifact_key(stage="fit", extra=_EXTRA)
                """,
        }
        report = run_lint(tmp_path, files, ["RPR011"])
        [violation] = report.violations
        assert "_EXTRA" in violation.message
        assert violation.chain == ("repro.core.keys.build",)

    def test_undeclared_self_attribute_flagged(self, tmp_path):
        files = {
            "src/repro/core/keys.py": """
                from dataclasses import dataclass
                @dataclass(frozen=True)
                class Spec:
                    name: str
                    def cache_key(self):
                        return canonical_params({"n": self.name, "x": self.extra})
                """,
        }
        report = run_lint(tmp_path, files, ["RPR011"])
        [violation] = report.violations
        assert "self.extra" in violation.message
        assert "self.name" not in violation.message

    def test_declared_fields_and_constants_are_clean(self, tmp_path):
        files = {
            "src/repro/core/keys.py": """
                from dataclasses import dataclass
                VERSION = 3
                @dataclass(frozen=True)
                class Spec:
                    name: str
                    def cache_key(self):
                        return artifact_key(name=self.name, version=VERSION)
                """,
        }
        report = run_lint(tmp_path, files, ["RPR011"])
        assert report.violations == []

    def test_inherited_dataclass_fields_count_as_declared(self, tmp_path):
        files = {
            "src/repro/core/keys.py": """
                from dataclasses import dataclass
                @dataclass(frozen=True)
                class BaseSpec:
                    seed: int
                @dataclass(frozen=True)
                class Spec(BaseSpec):
                    name: str
                    def cache_key(self):
                        return artifact_key(name=self.name, seed=self.seed)
                """,
        }
        report = run_lint(tmp_path, files, ["RPR011"])
        assert report.violations == []


class TestLibraryScoping:
    def test_findings_outside_src_repro_are_dropped(self, tmp_path):
        # Same defect as the RPR012 flagging fixture, but in a benchmarks
        # tree: program rules are library-scoped.
        files = {
            "benchmarks/exec.py": """
                import multiprocessing as mp
                _CACHE = {}
                def _worker(q):
                    _CACHE[q] = True
                def start():
                    p = mp.Process(target=_worker, args=(1,))
                    return p
                """,
        }
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        report = lint_paths(
            [tmp_path / "benchmarks"],
            rules=[],
            program_rules=[PROGRAM_RULE_REGISTRY["RPR012"]()],
        )
        assert report.violations == []
