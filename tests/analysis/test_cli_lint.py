"""The ``repro lint`` subcommand: exit codes, output formats, rule
selection/ignoring, baselines, graph export and the rule catalogue."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError


@pytest.fixture()
def dirty_tree(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(
        'import time\nstamp = time.time()\nraise ValueError("x")\n'
    )
    return tmp_path


class TestLintCommand:
    def test_clean_directory_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one_with_locations(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "RPR003" in out
        assert "RPR004" in out
        assert "dirty.py:2:8" in out

    def test_missing_path_exits_two(self, tmp_path):
        assert main(["lint", str(tmp_path / "missing")]) == 2

    def test_json_format(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert [v["rule"] for v in payload["violations"]] == ["RPR003", "RPR004"]
        assert all("call_path" in v for v in payload["violations"])

    def test_select_restricts_rules(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--select", "RPR004"]) == 1
        out = capsys.readouterr().out
        assert "RPR004" in out
        assert "RPR003" not in out

    def test_select_unknown_rule_rejected(self, dirty_tree):
        with pytest.raises(SystemExit):
            main(["lint", str(dirty_tree), "--select", "RPR999"])

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                        "RPR006", "RPR011", "RPR012", "RPR013"):
            assert rule_id in out
        assert "whole-program" in out


class TestIgnoreFlag:
    def test_ignore_drops_rule(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--ignore", "RPR003"]) == 1
        out = capsys.readouterr().out
        assert "RPR004" in out
        assert "RPR003" not in out

    def test_ignore_accepts_comma_list(self, dirty_tree, capsys):
        assert main(
            ["lint", str(dirty_tree), "--ignore", "RPR003,RPR004"]
        ) == 0
        assert "clean" in capsys.readouterr().out

    def test_ignore_unknown_rule_rejected(self, dirty_tree):
        with pytest.raises(SystemExit):
            main(["lint", str(dirty_tree), "--ignore", "RPR999"])

    def test_rpr900_is_ignorable_but_not_selectable(self, tmp_path, capsys):
        # A pragma that is only meaningful at whole-program scope looks
        # stale when one file is linted alone; --ignore RPR900 covers
        # that, while --select RPR900 stays invalid (the engine
        # synthesizes it, no registered rule runs it).
        stale = tmp_path / "stale.py"
        stale.write_text(
            "x = 1  # repro: allow[RPR012] -- used only at tree scope\n"
        )
        assert main(["lint", str(stale)]) == 1
        assert "RPR900" in capsys.readouterr().out
        assert main(["lint", str(stale), "--ignore", "RPR900"]) == 0
        assert "clean" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["lint", str(stale), "--select", "RPR900"])

    def test_select_and_ignore_conflict(self, dirty_tree):
        with pytest.raises(ConfigurationError, match="RPR003"):
            main(
                ["lint", str(dirty_tree), "--select", "RPR003",
                 "--ignore", "RPR003"]
            )

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes" in out
        for marker in ("0 ", "1 ", "2 "):
            assert marker in out


class TestNoFilesAnalyzed:
    def test_empty_directory_exits_two_with_warning(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        (empty / "README.md").write_text("no python here\n")
        assert main(["lint", str(empty)]) == 2
        out = capsys.readouterr().out
        assert "0 files analyzed" in out


class TestBaseline:
    def test_update_then_apply_suppresses_existing(self, dirty_tree, capsys):
        baseline = dirty_tree / "lint-baseline.json"
        assert main(
            ["lint", str(dirty_tree), "--baseline", str(baseline),
             "--update-baseline"]
        ) == 0
        capsys.readouterr()
        document = json.loads(baseline.read_text())
        assert document["version"] == 1
        assert {f["rule"] for f in document["findings"]} == {"RPR003", "RPR004"}

        assert main(["lint", str(dirty_tree), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_new_finding_escapes_baseline(self, dirty_tree, capsys):
        baseline = dirty_tree / "lint-baseline.json"
        main(["lint", str(dirty_tree), "--baseline", str(baseline),
              "--update-baseline"])
        capsys.readouterr()
        dirty = dirty_tree / "src" / "repro" / "dirty.py"
        dirty.write_text(dirty.read_text() + "other = time.time()\n")
        assert main(["lint", str(dirty_tree), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "RPR003" in out

    def test_baseline_survives_line_shifts(self, dirty_tree, capsys):
        baseline = dirty_tree / "lint-baseline.json"
        main(["lint", str(dirty_tree), "--baseline", str(baseline),
              "--update-baseline"])
        capsys.readouterr()
        dirty = dirty_tree / "src" / "repro" / "dirty.py"
        dirty.write_text("# a new comment line\n" + dirty.read_text())
        assert main(["lint", str(dirty_tree), "--baseline", str(baseline)]) == 0

    def test_update_baseline_requires_baseline_path(self, dirty_tree):
        with pytest.raises(ConfigurationError):
            main(["lint", str(dirty_tree), "--update-baseline"])


class TestGraphExport:
    def test_json_export_round_trips(self, dirty_tree, tmp_path, capsys):
        out_path = tmp_path / "graph.json"
        main(["lint", str(dirty_tree), "--graph", str(out_path)])
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["version"] == 1
        assert isinstance(payload["functions"], list)
        assert isinstance(payload["edges"], list)
        assert set(payload["roots"]) == {"stage", "worker", "profile_update"}

    def test_dot_export_is_graphviz_shaped(self, dirty_tree, tmp_path, capsys):
        out_path = tmp_path / "graph.dot"
        main(["lint", str(dirty_tree), "--graph", str(out_path)])
        capsys.readouterr()
        text = out_path.read_text()
        assert text.startswith("digraph")
        assert text.rstrip().endswith("}")


class TestIncrementalCache:
    def test_cache_flag_writes_cache_file(self, dirty_tree, capsys, monkeypatch):
        monkeypatch.chdir(dirty_tree)
        cache = dirty_tree / "cache.json"
        main(["lint", str(dirty_tree), "--cache", str(cache)])
        capsys.readouterr()
        assert cache.exists()
        main(["lint", str(dirty_tree), "--cache", str(cache)])
        out = capsys.readouterr().out
        assert "1 hit(s)" in out
