"""The ``repro lint`` subcommand: exit codes, output formats, rule
selection and the rule catalogue."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture()
def dirty_tree(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(
        'import time\nstamp = time.time()\nraise ValueError("x")\n'
    )
    return tmp_path


class TestLintCommand:
    def test_clean_directory_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one_with_locations(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "RPR003" in out
        assert "RPR004" in out
        assert "dirty.py:2:8" in out

    def test_missing_path_exits_two(self, tmp_path):
        assert main(["lint", str(tmp_path / "missing")]) == 2

    def test_json_format(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert [v["rule"] for v in payload["violations"]] == ["RPR003", "RPR004"]

    def test_select_restricts_rules(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--select", "RPR004"]) == 1
        out = capsys.readouterr().out
        assert "RPR004" in out
        assert "RPR003" not in out

    def test_select_unknown_rule_rejected(self, dirty_tree):
        with pytest.raises(SystemExit):
            main(["lint", str(dirty_tree), "--select", "RPR999"])

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"):
            assert rule_id in out
