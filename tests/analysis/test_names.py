"""Name-resolution edge cases: the call graph is only as good as these.

Aliased imports, ``from x import *``, relative imports and re-exports
through ``__init__.py`` are exactly the spellings the whole-program
resolver must canonicalise; a miss here silently drops call edges.
"""

from __future__ import annotations

import ast

from repro.analysis.names import ImportMap, module_name_for_path


def resolve(source: str, expr: str, module=None, is_package=False) -> str | None:
    imports = ImportMap.from_tree(
        ast.parse(source), module=module, is_package=is_package
    )
    node = ast.parse(expr, mode="eval").body
    return imports.resolve(node)


class TestAliasedImports:
    def test_import_as(self):
        assert (
            resolve("import numpy as np", "np.random.default_rng")
            == "numpy.random.default_rng"
        )

    def test_import_submodule_as(self):
        assert (
            resolve("import numpy.random as npr", "npr.default_rng")
            == "numpy.random.default_rng"
        )

    def test_from_import_as(self):
        assert (
            resolve("from numpy import random as npr", "npr.default_rng")
            == "numpy.random.default_rng"
        )

    def test_plain_submodule_import_binds_top_name(self):
        assert (
            resolve("import numpy.random", "numpy.random.default_rng")
            == "numpy.random.default_rng"
        )

    def test_unimported_name_is_none(self):
        assert resolve("import numpy as np", "pd.DataFrame") is None


class TestStarImports:
    def test_star_import_recorded_in_order(self):
        imports = ImportMap.from_tree(
            ast.parse("from repro.core import *\nfrom repro.obs import *\n")
        )
        assert imports.star_imports == ["repro.core", "repro.obs"]

    def test_star_import_binds_no_alias(self):
        imports = ImportMap.from_tree(ast.parse("from repro.core import *\n"))
        assert imports.aliases == {}


class TestRelativeImports:
    def test_single_dot_sibling(self):
        assert (
            resolve(
                "from .stages import artifact_key",
                "artifact_key",
                module="repro.core.pipeline",
            )
            == "repro.core.stages.artifact_key"
        )

    def test_double_dot_uncle(self):
        assert (
            resolve(
                "from ..obs import telemetry",
                "telemetry.Telemetry",
                module="repro.core.pipeline",
            )
            == "repro.obs.telemetry.Telemetry"
        )

    def test_bare_dot_import(self):
        assert (
            resolve(
                "from . import stages",
                "stages.artifact_key",
                module="repro.core.pipeline",
            )
            == "repro.core.stages.artifact_key"
        )

    def test_package_init_counts_one_level_shallower(self):
        # Inside repro/core/__init__.py, ``from .stages import x`` means
        # repro.core.stages, not repro.stages.
        assert (
            resolve(
                "from .stages import artifact_key",
                "artifact_key",
                module="repro.core",
                is_package=True,
            )
            == "repro.core.stages.artifact_key"
        )

    def test_relative_import_without_module_context_is_skipped(self):
        assert resolve("from .stages import artifact_key", "artifact_key") is None

    def test_too_many_dots_is_skipped(self):
        assert (
            resolve(
                "from ....nowhere import thing",
                "thing",
                module="repro.core",
            )
            is None
        )


class TestModuleNameForPath:
    def test_package_module(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "stages.py").write_text("")
        name, is_package = module_name_for_path(pkg / "stages.py")
        assert name == "repro.core.stages"
        assert is_package is False

    def test_package_init(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        name, is_package = module_name_for_path(pkg / "__init__.py")
        assert name == "repro.core"
        assert is_package is True

    def test_loose_file_uses_stem(self, tmp_path):
        loose = tmp_path / "script.py"
        loose.write_text("")
        name, is_package = module_name_for_path(loose)
        assert name == "script"
        assert is_package is False


class TestReexportThroughInit:
    """Re-exports need the whole-program resolver, but the per-file map
    must canonicalise the import of the *package* name correctly first."""

    def test_from_package_import_binds_package_path(self):
        assert (
            resolve("from repro.analysis import lint_paths", "lint_paths")
            == "repro.analysis.lint_paths"
        )

    def test_datetime_class_canonicalisation(self):
        assert (
            resolve("from datetime import datetime", "datetime.now")
            == "datetime.datetime.now"
        )
