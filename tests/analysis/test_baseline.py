"""Ratchet baselines: stable fingerprints, apply/update round trips."""

from __future__ import annotations

import json

import pytest

from repro.analysis.base import Violation
from repro.analysis.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.errors import PersistenceError


def violation(rule="RPR003", path="src/repro/x.py", line=10,
              message="wall-clock read"):
    return Violation(path=path, line=line, col=0, rule=rule, message=message)


class TestFingerprint:
    def test_independent_of_line_numbers(self):
        assert fingerprint(violation(line=10)) == fingerprint(violation(line=99))

    def test_sensitive_to_rule_file_and_message(self):
        base = fingerprint(violation())
        assert fingerprint(violation(rule="RPR004")) != base
        assert fingerprint(violation(path="src/repro/y.py")) != base
        assert fingerprint(violation(message="other")) != base

    def test_occurrence_index_disambiguates_duplicates(self):
        assert fingerprint(violation(), 0) != fingerprint(violation(), 1)


class TestRoundTrip:
    def test_write_then_apply_suppresses_all(self, tmp_path):
        findings = [violation(line=1), violation(line=2, rule="RPR004")]
        path = tmp_path / "baseline.json"
        assert write_baseline(path, findings) == 2
        surviving, suppressed = apply_baseline(findings, load_baseline(path))
        assert surviving == []
        assert suppressed == 2

    def test_new_finding_survives(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [violation()])
        fresh = violation(message="a brand new defect")
        surviving, suppressed = apply_baseline(
            [violation(line=42), fresh], load_baseline(path)
        )
        assert surviving == [fresh]
        assert suppressed == 1

    def test_duplicate_findings_consume_baseline_entries(self, tmp_path):
        # Two identical findings baselined; if the file later has three,
        # exactly one must survive -- the baseline is a multiset.
        path = tmp_path / "baseline.json"
        write_baseline(path, [violation(line=1), violation(line=2)])
        surviving, suppressed = apply_baseline(
            [violation(line=1), violation(line=2), violation(line=3)],
            load_baseline(path),
        )
        assert len(surviving) == 1
        assert suppressed == 2

    def test_document_is_versioned_and_sorted(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [violation(rule="RPR004"), violation()])
        document = json.loads(path.read_text())
        assert document["version"] == 1
        rules = [finding["rule"] for finding in document["findings"]]
        assert rules == sorted(rules)


class TestLoadErrors:
    def test_missing_file_raises_persistence_error(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_baseline(tmp_path / "absent.json")

    def test_invalid_json_raises_persistence_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        with pytest.raises(PersistenceError):
            load_baseline(path)

    def test_wrong_version_raises_persistence_error(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(PersistenceError):
            load_baseline(path)
