"""The incremental analysis cache: warm runs re-analyze only changes."""

from __future__ import annotations

import json
import textwrap

from repro.analysis.cache import AnalysisCache, content_hash
from repro.analysis.engine import lint_paths

TREE = {
    "src/repro/__init__.py": "",
    "src/repro/alpha.py": """
        import time
        def stamp():
            return time.time()  # repro: allow[RPR003] -- fixture timestamp
        """,
    "src/repro/beta.py": """
        def double(x):
            return 2 * x
        """,
    "src/repro/gamma.py": """
        from repro.beta import double
        def quadruple(x):
            return double(double(x))
        """,
}


def write_tree(tmp_path, files=TREE):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path / "src"


class TestWarmRuns:
    def test_cold_run_misses_warm_run_hits(self, tmp_path):
        root = write_tree(tmp_path)
        cache_file = tmp_path / "cache.json"
        cold = lint_paths([root], cache_path=cache_file)
        assert cold.cache_hits == 0
        assert cold.cache_misses == 4
        warm = lint_paths([root], cache_path=cache_file)
        assert warm.cache_hits == 4
        assert warm.cache_misses == 0
        assert warm.violations == cold.violations
        assert warm.exit_code == cold.exit_code

    def test_touching_one_file_reanalyzes_only_it(self, tmp_path):
        root = write_tree(tmp_path)
        cache_file = tmp_path / "cache.json"
        lint_paths([root], cache_path=cache_file)
        beta = root / "repro" / "beta.py"
        beta.write_text(beta.read_text() + "\nTWO = 2\n")
        warm = lint_paths([root], cache_path=cache_file)
        assert warm.cache_misses == 1
        assert warm.cache_hits == 3

    def test_warm_run_preserves_cross_module_findings(self, tmp_path):
        files = dict(TREE)
        files["src/repro/core/__init__.py"] = ""
        files["src/repro/core/stages.py"] = """
            from repro.alpha import stamp
            def fit_model(x):
                return stamp()
            """
        root = write_tree(tmp_path, files)
        cache_file = tmp_path / "cache.json"
        cold = lint_paths([root], cache_path=cache_file)
        warm = lint_paths([root], cache_path=cache_file)
        # The sanctioned wall-clock origin keeps RPR013 quiet, and the
        # warm run reproduces the cold result from cached summaries.
        assert warm.violations == cold.violations
        assert warm.cache_misses == 0

    def test_rule_set_change_invalidates_cache(self, tmp_path):
        root = write_tree(tmp_path)
        cache_file = tmp_path / "cache.json"
        lint_paths([root], cache_path=cache_file)
        warm = lint_paths([root], rules=[], program_rules=[],
                          cache_path=cache_file)
        assert warm.cache_hits == 0

    def test_corrupt_cache_is_ignored(self, tmp_path):
        root = write_tree(tmp_path)
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json")
        report = lint_paths([root], cache_path=cache_file)
        assert report.cache_misses == 4
        # ... and the run rewrote it into a valid document.
        assert json.loads(cache_file.read_text())["version"] == 1


class TestAnalysisCacheUnit:
    def test_lookup_counts_hits_and_misses(self, tmp_path):
        cache = AnalysisCache(tmp_path / "c.json", signature="sig")
        digest = content_hash("x = 1\n")
        assert cache.lookup("a.py", digest) is None
        cache.store("a.py", digest, {"violations": []})
        assert cache.lookup("a.py", digest) == {
            "violations": [],
            "hash": digest,
        }
        assert cache.lookup("a.py", content_hash("x = 2\n")) is None
        assert cache.hits == 1
        assert cache.misses == 2

    def test_signature_mismatch_loads_empty(self, tmp_path):
        path = tmp_path / "c.json"
        cache = AnalysisCache(path, signature="old")
        cache.store("a.py", "h", {})
        cache.save()
        reloaded = AnalysisCache.load(path, signature="new")
        assert reloaded.files == {}
