"""The linter's own acceptance gate: this repository lints clean.

If a change introduces a new violation, this test fails with the exact
``path:line:col: RPRnnn`` lines, the same output CI shows. The graph
self-check pins the analysis roots the whole-program rules anchor on:
losing a root silently disables RPR012/RPR013 for that entry point.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.reporting import format_text

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.parametrize("tree", ["src", "benchmarks", "tests"])
def test_tree_lints_clean(tree):
    report = lint_paths([REPO_ROOT / tree])
    assert report.exit_code == 0, "\n" + format_text(report)


def test_full_repo_lint_checks_every_python_file():
    report = lint_paths([REPO_ROOT / t for t in ("src", "benchmarks", "tests")])
    assert report.exit_code == 0, "\n" + format_text(report)
    assert report.files_checked >= 150


class TestGraphRoots:
    @pytest.fixture(scope="class")
    def analysis(self):
        report = lint_paths([REPO_ROOT / "src" / "repro"])
        assert report.analysis is not None
        return report.analysis

    def test_worker_entry_points_are_roots(self, analysis):
        workers = set(analysis.roots["worker"])
        assert "repro.experiments.executors._pool_worker" in workers
        assert "repro.experiments.executors.evaluate_cell" in workers

    def test_every_stages_function_is_a_stage_root(self, analysis):
        stage_roots = set(analysis.roots["stage"])
        stages_functions = {
            qualname
            for qualname, function in analysis.program.functions.items()
            if qualname.startswith("repro.core.stages.")
            and function.name != "<module>"
        }
        assert stages_functions, "core/stages.py functions not found"
        assert stages_functions <= stage_roots
        # The four pipeline stage methods anchor RPR013 as well.
        for method in ("prepare_corpus", "fit_model", "build_profiles",
                       "rank_users"):
            assert (
                f"repro.core.pipeline.ExperimentPipeline.{method}" in stage_roots
            )

    def test_profile_update_is_a_root(self, analysis):
        updates = set(analysis.roots["profile_update"])
        assert any(qualname.endswith(".update") for qualname in updates)
