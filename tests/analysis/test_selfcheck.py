"""The linter's own acceptance gate: this repository lints clean.

If a change introduces a new violation, this test fails with the exact
``path:line:col: RPRnnn`` lines, the same output CI shows.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.reporting import format_text

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.parametrize("tree", ["src", "benchmarks", "tests"])
def test_tree_lints_clean(tree):
    report = lint_paths([REPO_ROOT / tree])
    assert report.exit_code == 0, "\n" + format_text(report)


def test_full_repo_lint_checks_every_python_file():
    report = lint_paths([REPO_ROOT / t for t in ("src", "benchmarks", "tests")])
    assert report.exit_code == 0, "\n" + format_text(report)
    assert report.files_checked >= 150
