"""Output formats: the versioned JSON document, text rendering and the
--list-rules catalogue."""

from __future__ import annotations

import json

from repro.analysis import lint_source
from repro.analysis.base import default_rules
from repro.analysis.reporting import (
    JSON_FORMAT_VERSION,
    format_json,
    format_rules,
    format_text,
)

LIB_PATH = "src/repro/fake_module.py"
DIRTY = 'import time\nstamp = time.time()\nraise ValueError("x")\n'


class TestJson:
    def test_document_schema(self):
        payload = json.loads(format_json(lint_source(DIRTY, LIB_PATH)))
        assert set(payload) == {
            "version",
            "files_checked",
            "violations",
            "errors",
            "cache",
            "baselined",
        }
        assert payload["version"] == JSON_FORMAT_VERSION
        assert payload["files_checked"] == 1
        assert payload["errors"] == []
        assert payload["cache"] == {"hits": 0, "misses": 0}
        assert payload["baselined"] == 0
        for violation in payload["violations"]:
            assert set(violation) == {
                "file",
                "line",
                "col",
                "rule",
                "message",
                "call_path",
            }
        assert [v["rule"] for v in payload["violations"]] == ["RPR003", "RPR004"]
        assert payload["violations"][0]["file"] == LIB_PATH
        assert payload["violations"][0]["line"] == 2

    def test_clean_report(self):
        payload = json.loads(format_json(lint_source("x = 1\n", LIB_PATH)))
        assert payload["violations"] == []

    def test_errors_included(self):
        payload = json.loads(format_json(lint_source("def f(:\n", LIB_PATH)))
        assert len(payload["errors"]) == 1


class TestText:
    def test_violation_lines_and_summary(self):
        text = format_text(lint_source(DIRTY, LIB_PATH))
        assert f"{LIB_PATH}:2:8: RPR003" in text
        assert f"{LIB_PATH}:3:0: RPR004" in text
        assert "2 violation(s) in 1 file(s)" in text

    def test_clean_summary(self):
        text = format_text(lint_source("x = 1\n", LIB_PATH))
        assert "clean" in text


class TestListRules:
    def test_every_rule_described(self):
        catalogue = format_rules(default_rules())
        for rule in default_rules():
            assert rule.id in catalogue
            assert rule.name in catalogue

    def test_program_rules_marked_whole_program(self):
        from repro.analysis.base import default_program_rules

        catalogue = format_rules(default_program_rules())
        assert "RPR011" in catalogue
        assert "[whole-program]" in catalogue
