"""Tests for the pluggable sweep executors.

The load-bearing property is parity: a ``--jobs N`` sweep must produce
exactly the rows -- same values, same order -- as a serial sweep, because
the paper's tables are regenerated from saved sweep files and must not
depend on how the sweep was executed.
"""

from __future__ import annotations

import pytest

from repro.core.sources import RepresentationSource
from repro.errors import ConfigurationError
from repro.experiments.executors import (
    Cell,
    GridSpec,
    PipelineSpec,
    ProcessCellExecutor,
    SweepSpec,
    evaluate_cell,
)
from repro.experiments.runner import SweepRunner
from repro.obs.events import MemorySink
from repro.obs.telemetry import Telemetry
from repro.twitter.dataset import DatasetConfig, select_user_groups
from repro.twitter.entities import UserType

#: The whole sweep, as a picklable spec: workers rebuild dataset,
#: pipeline and grid from this and must land on identical rows.
SPEC = SweepSpec(
    pipeline=PipelineSpec(
        dataset=DatasetConfig(n_users=24, n_ticks=80, seed=11),
        seed=1,
        max_train_docs_per_user=60,
    ),
    grid=GridSpec(topic_scale=0.05, iteration_scale=0.003, infer_iterations=2, seed=0),
)

SOURCES = [RepresentationSource.R, RepresentationSource.E]


def _configs():
    grid = SPEC.grid.build()
    return grid.all_configurations()["TN"][:3] + grid.tng_configurations()[:2]


def _runner(telemetry=None):
    pipeline = SPEC.pipeline.build(telemetry=telemetry)
    groups = select_user_groups(pipeline.dataset, group_size=5, min_retweets=5)
    return SweepRunner(pipeline, groups, telemetry=telemetry)


def _row_fingerprint(row):
    """Everything about a row except wall-clock timings."""
    return (row.model, tuple(sorted(row.params.items())), row.source, row.group,
            row.map_score, tuple(sorted(row.per_user_ap.items())))


class TestSpecs:
    def test_grid_spec_round_trip(self):
        grid = SPEC.grid.build()
        assert GridSpec.from_grid(grid) == SPEC.grid

    def test_cell_key_is_canonical(self):
        a = Cell(model="TN", params={"n": 1, "weighting": "TF"}, label="l",
                 source="R", users=(1, 2))
        b = Cell(model="TN", params={"weighting": "TF", "n": 1}, label="l",
                 source="R", users=(1, 2))
        assert a.key == b.key


class TestParallelParity:
    @pytest.fixture(scope="class")
    def serial_and_parallel(self):
        serial = _runner().run(_configs(), SOURCES, groups=[UserType.ALL])
        parallel = _runner().run(
            _configs(), SOURCES, groups=[UserType.ALL],
            executor=ProcessCellExecutor(SPEC, jobs=2),
        )
        return serial, parallel

    def test_rows_bit_identical_and_same_order(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert len(serial.rows) == len(parallel.rows) > 0
        for left, right in zip(serial.rows, parallel.rows):
            assert _row_fingerprint(left) == _row_fingerprint(right)

    def test_per_user_ap_exactly_equal(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        for left, right in zip(serial.rows, parallel.rows):
            assert left.per_user_ap == right.per_user_ap  # floats, exact


class TestWorkerEvaluation:
    def test_unknown_configuration_raises(self):
        cell = Cell(model="TN", params={"made": "up"}, label="TN(?)",
                    source="R", users=(1,))
        with pytest.raises(ConfigurationError, match="no matching configuration"):
            evaluate_cell(SPEC, cell)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessCellExecutor(SPEC, jobs=0)

    def test_unpicklable_cell_fails_fast_and_leaks_no_workers(self):
        """Regression: a cell that cannot cross the process boundary
        used to abandon the half-started pool (shutdown(wait=False))
        and leak its workers. The supervised executor pickles every
        payload before spawning anything and tears the pool down in a
        ``finally``, so the failure is synchronous, typed, and leaves
        no stray child processes behind."""
        import multiprocessing

        poisoned = Cell(
            model="TN",
            params={"factory": lambda: 1},  # defeats pickle
            label="TN(poisoned)",
            source="R",
            users=(1,),
        )
        executor = ProcessCellExecutor(SPEC, jobs=2)
        with pytest.raises(ConfigurationError, match="not picklable"):
            list(executor.run_cells([(poisoned, None)]))
        for child in multiprocessing.active_children():
            child.join(timeout=5.0)
        assert multiprocessing.active_children() == []

    def test_abandoned_generator_tears_down_the_pool(self):
        """Closing the result generator early (the consumer raised, or
        only wanted the first cell) must still join every worker."""
        import multiprocessing

        grid = SPEC.grid.build()
        configs = grid.all_configurations()["TN"][:2]
        cells = [
            (
                Cell(model=c.model, params=dict(c.params), label=c.label(),
                     source="R", users=(1, 2, 3)),
                None,
            )
            for c in configs
        ]
        executor = ProcessCellExecutor(SPEC, jobs=2)
        results = executor.run_cells(cells)
        next(results)
        results.close()
        for child in multiprocessing.active_children():
            child.join(timeout=5.0)
        assert multiprocessing.active_children() == []


class TestTelemetryMerge:
    def test_worker_telemetry_joins_parent_stream(self):
        telemetry = Telemetry()
        sink = MemorySink()
        telemetry.events.add_sink(sink)
        runner = _runner(telemetry=telemetry)
        configs = _configs()[:2]
        result = runner.run(
            configs, [RepresentationSource.R], groups=[UserType.ALL],
            executor=ProcessCellExecutor(SPEC, jobs=2),
        )
        assert result.rows

        # Lifecycle events for every cell, in dispatch order.
        dispatched = [e["cell"] for e in sink.of("cell_dispatched")]
        joined = [e["cell"] for e in sink.of("cell_joined")]
        assert dispatched == joined and len(dispatched) == len(configs)

        # Workers' corpus-cache counters folded into the parent registry:
        # each worker prepares the source corpus once, then shares it.
        metrics = telemetry.metrics.snapshot()
        misses = metrics["corpus_cache.miss"]["value"]
        hits = metrics.get("corpus_cache.hit", {"value": 0})["value"]
        # At most one prepare per worker process; the rest are hits.
        assert 1 <= misses <= 2
        assert misses + hits == len(configs)

        # Worker span trees grafted under the parent's sweep span.
        spans = telemetry.tracer.to_payload()
        sweep_span = next(s for s in spans if s["name"] == "sweep")
        config_spans = [c for c in sweep_span["children"] if c["name"] == "config"]
        assert len(config_spans) == len(configs)
        assert all(
            any(g["name"] == "evaluate" for g in span["children"])
            for span in config_spans
        )
