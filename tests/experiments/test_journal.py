"""Tests for the resumable sweep journal.

The contract under test: an interrupted sweep resumed from its journal
re-evaluates no journaled cell, loses no cell, and ends with exactly the
rows an uninterrupted run would have produced.
"""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.experiments.configs import ConfigGrid
from repro.experiments.persistence import SweepJournal
from repro.experiments.runner import SweepRunner
from repro.obs.events import MemorySink
from repro.obs.telemetry import Telemetry
from repro.twitter.entities import UserType

SOURCES = [RepresentationSource.R, RepresentationSource.E]


def _configs():
    grid = ConfigGrid(topic_scale=0.05, iteration_scale=0.003, infer_iterations=2)
    return grid.all_configurations()["TN"][:3]


def _runner(small_dataset, small_groups, telemetry=None):
    pipeline = ExperimentPipeline(
        small_dataset, seed=1, max_train_docs_per_user=60, telemetry=telemetry
    )
    return SweepRunner(pipeline, small_groups, telemetry=telemetry)


def _row_fingerprint(row):
    return (row.model, tuple(sorted(row.params.items())), row.source, row.group,
            row.map_score, tuple(sorted(row.per_user_ap.items())))


class TestJournalFile:
    def test_records_header_and_cells(self, tmp_path, small_dataset, small_groups):
        path = tmp_path / "sweep.journal.jsonl"
        with SweepJournal(path) as journal:
            _runner(small_dataset, small_groups).run(
                _configs(), SOURCES, groups=[UserType.ALL], journal=journal
            )
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"format": "repro-sweep-journal", "version": 1}
        cells = [e for e in lines[1:] if e.get("record") != "heartbeat"]
        heartbeats = [e for e in lines[1:] if e.get("record") == "heartbeat"]
        assert len(cells) == len(_configs()) * len(SOURCES)
        assert all("cell" in entry and "per_user_ap" in entry for entry in cells)
        # One heartbeat follows each journaled cell, plus the final one
        # written after sweep_done.
        assert len(heartbeats) == len(cells) + 1
        assert all("eta_seconds" in hb and "done" in hb for hb in heartbeats)
        assert heartbeats[-1]["finished"] is True
        assert heartbeats[-1]["done"] == len(cells)

    def test_record_after_close_raises(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.record(None, None)

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"format":"repro-sweep-journal","version":1}\nnot json\n{"cell":"x"}\n'
        )
        with pytest.raises(ValueError, match="corrupt journal"):
            SweepJournal(path, resume=True)

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"format":"something-else","version":9}\n')
        with pytest.raises(ValueError, match="sweep journal"):
            SweepJournal(path, resume=True)

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        journal = SweepJournal(tmp_path / "new.jsonl", resume=True)
        assert journal.restored == 0
        assert len(journal) == 0
        journal.close()


HEADER = '{"format":"repro-sweep-journal","version":1}'
COMPLETE_RECORD = json.dumps(
    {
        "cell": "TN|R|{}",
        "model": "TN",
        "params": {},
        "source": "R",
        "skipped": None,
        "per_user_ap": {"1": 0.5},
        "training_seconds": 1.0,
        "testing_seconds": 0.1,
    }
)


class TestTornTailScanner:
    """Regression: the scanner must treat *record completeness* -- not
    mere JSON validity -- as the completion criterion. A torn tail that
    truncates into valid JSON used to be restored as a finished cell,
    and ``--resume`` silently skipped a cell that never produced rows.
    """

    def test_valid_json_tail_missing_keys_is_torn_not_complete(self, tmp_path):
        path = tmp_path / "j.jsonl"
        # The kill landed after the closing brace of a *prefix* of the
        # record that still parses: a header-only cell announcement.
        path.write_text(HEADER + "\n" + COMPLETE_RECORD + "\n" + '{"cell": "BTM|R|{}"}')
        with SweepJournal(path, resume=True) as journal:
            assert journal.restored == 1
            assert "TN|R|{}" in journal
            assert "BTM|R|{}" not in journal  # must re-run, not skip
        # The torn tail is sanitized away on open.
        assert path.read_text() == HEADER + "\n" + COMPLETE_RECORD + "\n"

    def test_incomplete_record_mid_file_is_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            HEADER + "\n" + '{"cell": "BTM|R|{}"}' + "\n" + COMPLETE_RECORD + "\n"
        )
        with pytest.raises(ValueError, match="incomplete cell record"):
            SweepJournal(path, resume=True)

    def test_non_object_tail_is_torn(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(HEADER + "\n" + COMPLETE_RECORD + "\n" + "null")
        with SweepJournal(path, resume=True) as journal:
            assert journal.restored == 1

    def test_quarantined_record_round_trips(self, tmp_path):
        from repro.experiments.executors import Cell, CellOutcome
        from repro.experiments.supervision import CellFailure

        path = tmp_path / "j.jsonl"
        cell = Cell(model="TN", params={}, label="TN", source="R", users=(1,))
        failed = CellOutcome(
            model="TN",
            params={},
            source="R",
            attempts=3,
            failure=CellFailure(
                kind="crash",
                error="WorkerCrashError",
                message="worker died",
                attempts=3,
                elapsed_seconds=1.25,
            ),
        )
        with SweepJournal(path) as journal:
            journal.record(cell, failed)
        with SweepJournal(path, resume=True) as journal:
            assert journal.quarantined() == [cell.key]
            restored = journal.outcome(cell.key)
            assert restored.failure == failed.failure
            assert restored.attempts == 3


class TestResume:
    def test_interrupted_sweep_resumes_without_rerunning(
        self, tmp_path, small_dataset, small_groups
    ):
        configs = _configs()
        path = tmp_path / "sweep.journal.jsonl"

        # The uninterrupted reference run (journaled, so we can tear it).
        with SweepJournal(path) as journal:
            full = _runner(small_dataset, small_groups).run(
                configs, SOURCES, groups=[UserType.ALL], journal=journal
            )

        # Simulate a kill after two cells: keep header + 2 records (and
        # their interleaved heartbeats) and a torn, half-written third
        # record.
        lines = path.read_text().splitlines()
        completed = 2
        cell_indices = [
            i for i, line in enumerate(lines[1:], start=1)
            if json.loads(line).get("record") != "heartbeat"
        ]
        keep_through = cell_indices[completed - 1] + 1  # trailing heartbeat too
        path.write_text(
            "\n".join(lines[: 1 + keep_through])
            + "\n"
            + lines[cell_indices[completed]][:37]
        )

        telemetry = Telemetry()
        sink = MemorySink()
        telemetry.events.add_sink(sink)
        with SweepJournal(path, resume=True) as journal:
            assert journal.restored == completed
            resumed = _runner(small_dataset, small_groups, telemetry=telemetry).run(
                configs, SOURCES, groups=[UserType.ALL], journal=journal
            )

        total_cells = len(configs) * len(SOURCES)
        # No journaled cell re-evaluated, none lost.
        assert len(sink.of("cell_restored")) == completed
        assert len(sink.of("cell_dispatched")) == total_cells - completed
        metrics = telemetry.metrics.snapshot()
        assert metrics["sweep.cells.restored"]["value"] == completed
        assert metrics["sweep.configs.evaluated"]["value"] == total_cells - completed

        # The resumed result equals the uninterrupted one, rows in order.
        assert [_row_fingerprint(r) for r in resumed.rows] == [
            _row_fingerprint(r) for r in full.rows
        ]

        # And the journal is whole again: a second resume restores all.
        with SweepJournal(path, resume=True) as journal:
            assert journal.restored == total_cells

    def test_completed_journal_short_circuits_everything(
        self, tmp_path, small_dataset, small_groups
    ):
        configs = _configs()
        path = tmp_path / "sweep.journal.jsonl"
        with SweepJournal(path) as journal:
            full = _runner(small_dataset, small_groups).run(
                configs, SOURCES, groups=[UserType.ALL], journal=journal
            )
        telemetry = Telemetry()
        sink = MemorySink()
        telemetry.events.add_sink(sink)
        with SweepJournal(path, resume=True) as journal:
            resumed = _runner(small_dataset, small_groups, telemetry=telemetry).run(
                configs, SOURCES, groups=[UserType.ALL], journal=journal
            )
        assert not sink.of("cell_dispatched")
        assert [_row_fingerprint(r) for r in resumed.rows] == [
            _row_fingerprint(r) for r in full.rows
        ]
