"""Tests for the sweep runner and its aggregations."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.experiments.configs import ConfigGrid
from repro.experiments.runner import SweepResult, SweepRow, SweepRunner
from repro.twitter.entities import UserType


@pytest.fixture(scope="module")
def sweep(small_dataset, small_groups):
    pipeline = ExperimentPipeline(small_dataset, seed=1, max_train_docs_per_user=60)
    runner = SweepRunner(pipeline, small_groups)
    grid = ConfigGrid(topic_scale=0.05, iteration_scale=0.003, infer_iterations=2)
    # A small but heterogeneous slice: 3 TN configs + all 9 TNG configs.
    configs = grid.all_configurations()["TN"][:3] + grid.tng_configurations()
    result = runner.run(
        configs,
        [RepresentationSource.R, RepresentationSource.E],
        groups=[UserType.ALL],
    )
    return runner, result


class TestSweepRows:
    def test_rows_cover_models_and_sources(self, sweep):
        _, result = sweep
        assert set(result.models()) == {"TN", "TNG"}
        sources = {row.source for row in result.rows}
        assert sources == {RepresentationSource.R, RepresentationSource.E}

    def test_row_count(self, sweep):
        # 12 configs x 2 sources x 1 group (no Rocchio in the slice).
        _, result = sweep
        assert len(result.rows) == 24

    def test_map_in_unit_interval(self, sweep):
        _, result = sweep
        for row in result.rows:
            assert 0.0 <= row.map_score <= 1.0

    def test_filtered(self, sweep):
        _, result = sweep
        tng_rows = result.filtered(model="TNG", source=RepresentationSource.R)
        assert len(tng_rows) == 9


class TestAggregations:
    def test_map_summary_bounds(self, sweep):
        _, result = sweep
        summary = result.map_summary("TNG", RepresentationSource.R, UserType.ALL)
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.deviation >= 0.0

    def test_source_summary_pools_models(self, sweep):
        _, result = sweep
        summary = result.source_summary(RepresentationSource.R, UserType.ALL)
        per_model = [
            result.map_summary(m, RepresentationSource.R, UserType.ALL)
            for m in result.models()
        ]
        assert summary.maximum == max(s.maximum for s in per_model)
        assert summary.minimum == min(s.minimum for s in per_model)

    def test_best_configuration_is_argmax(self, sweep):
        _, result = sweep
        best = result.best_configuration("TNG", RepresentationSource.R)
        rows = result.filtered(model="TNG", source=RepresentationSource.R)
        assert best.map_score == max(r.map_score for r in rows)

    def test_best_configuration_unknown_model(self, sweep):
        _, result = sweep
        with pytest.raises(KeyError):
            result.best_configuration("BTM", RepresentationSource.R)

    def test_timing_summary(self, sweep):
        _, result = sweep
        ttime, etime = result.timing_summary("TN")
        assert ttime.minimum <= ttime.average <= ttime.maximum
        assert etime.average >= 0.0

    def test_best_configuration_groups_by_canonical_params(self):
        # Two groups of the same configuration whose params dicts have
        # different insertion orders must be averaged together; the
        # winner is the config with the best *group-mean* MAP, and the
        # key is canonical JSON (not a repr of the dict's items).
        def row(params, group, map_score):
            return SweepRow(
                model="TN", params=params, source=RepresentationSource.R,
                group=group, map_score=map_score, per_user_ap={1: map_score},
                training_seconds=0.0, testing_seconds=0.0,
            )

        result = SweepResult([
            # Config A: spectacular on one group, terrible on the other.
            row({"n": 1, "weighting": "TF"}, UserType.ALL, 0.9),
            row({"weighting": "TF", "n": 1}, UserType.INFORMATION_SEEKER, 0.1),
            # Config B: solid on both -> higher mean, the winner.
            row({"n": 2, "weighting": "TF"}, UserType.ALL, 0.6),
            row({"weighting": "TF", "n": 2}, UserType.INFORMATION_SEEKER, 0.6),
        ])
        best = result.best_configuration("TN", RepresentationSource.R)
        assert best.params["n"] == 2


class TestRunnerProtocol:
    def test_rocchio_skipped_on_sources_without_negatives(
        self, small_dataset, small_groups
    ):
        pipeline = ExperimentPipeline(small_dataset, seed=1, max_train_docs_per_user=40)
        runner = SweepRunner(pipeline, small_groups)
        grid = ConfigGrid()
        rocchio_configs = [
            c for c in grid.tn_configurations() if c.uses_rocchio
        ][:1]
        result = runner.run(
            rocchio_configs,
            [RepresentationSource.R, RepresentationSource.E],
            groups=[UserType.ALL],
        )
        assert {row.source for row in result.rows} == {RepresentationSource.E}

    def test_baselines_per_group(self, sweep):
        runner, _ = sweep
        base = runner.baselines(groups=[UserType.ALL], random_iterations=50)
        assert set(base[UserType.ALL]) == {"CHR", "RAN"}
        assert 0.0 <= base[UserType.ALL]["RAN"] <= 1.0
