"""Tests for the calibrated ``repro bench`` suite.

The load-bearing property is schema stability: a serial suite and a
``--jobs 2`` suite must produce baselines with identical phase keys and
metric names, every phase carrying wall-clock and peak-RSS statistics,
so baselines recorded on different machines/configurations stay
comparable.
"""

from __future__ import annotations

import pytest

import benchmarks._common as bench_common
from repro.core.sources import RepresentationSource
from repro.errors import ConfigurationError
from repro.experiments.bench import (
    SUITE_SCALES,
    TRIALS_ENV,
    default_trials,
    run_bench_suite,
)
from repro.experiments.runner import SweepResult, SweepRow
from repro.obs.baseline import compare_baselines, load_baseline
from repro.twitter.entities import UserType

#: Fastest possible suite slice: one bag model, one source, tiny corpus.
#: One warmup trial is load-bearing for the comparison tests: the very
#: first trial in a process pays import/allocator warmup, which shows
#: up as a spurious median shift between two same-seed runs.
FAST = dict(
    scale="tiny", trials=1, warmup=1, models=("TN",), sources=(RepresentationSource.R,)
)


class TestTrialsKnob:
    def test_defaults_to_fallback(self, monkeypatch):
        monkeypatch.delenv(TRIALS_ENV, raising=False)
        assert default_trials() == 3
        assert default_trials(fallback=1) == 1

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(TRIALS_ENV, "7")
        assert default_trials() == 7
        assert default_trials(fallback=1) == 7

    @pytest.mark.parametrize("bad", ["zero-ish", "0", "-3"])
    def test_invalid_values_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(TRIALS_ENV, bad)
        with pytest.raises(ConfigurationError):
            default_trials()


class TestSuiteValidation:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            run_bench_suite(scale="galactic")

    def test_trials_and_warmup_bounds(self):
        with pytest.raises(ConfigurationError):
            run_bench_suite(scale="tiny", trials=0)
        with pytest.raises(ConfigurationError):
            run_bench_suite(scale="tiny", warmup=-1)

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            run_bench_suite(scale="tiny", models=("NOPE",))

    def test_scales_are_ordered_small_to_large(self):
        assert SUITE_SCALES["tiny"].n_users < SUITE_SCALES["quick"].n_users


class TestSuiteBaselines:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_bench_suite(label="serial", **{**FAST, "trials": 2})

    def test_every_phase_has_wall_and_rss(self, serial):
        assert serial.phases  # non-empty
        for phase, metrics in serial.phases.items():
            assert "wall_seconds" in metrics, phase
            assert "peak_rss_bytes" in metrics, phase
            assert len(metrics["wall_seconds"].samples) == 2

    def test_pipeline_stages_are_present(self, serial):
        assert "TN/R/total" in serial.phases
        for stage in ("prepare", "fit", "profiles", "rank"):
            assert f"TN/R/{stage}" in serial.phases

    def test_manifest_and_config_record_the_run(self, serial):
        assert serial.manifest["command"] == "bench"
        assert serial.manifest["extra"]["scale"] == "tiny"
        assert serial.config["models"] == ["TN"]
        assert serial.counters  # e.g. docs.tokenized

    def test_parallel_schema_matches_serial(self, serial):
        parallel = run_bench_suite(label="parallel", jobs=2, **FAST)
        assert set(parallel.phases) == set(serial.phases)
        for phase in serial.phases:
            assert set(parallel.phases[phase]) == set(serial.phases[phase]), phase

    def test_same_seed_runs_compare_clean(self, serial, tmp_path):
        # Save/load round trip plus the acceptance gate: two runs of the
        # same suite at the same seed must report zero regressions.
        again = run_bench_suite(label="again", **{**FAST, "trials": 2})
        path = again.save(tmp_path / "BENCH_again.json")
        comparison = compare_baselines(serial, load_baseline(path))
        assert comparison.regressions == []
        assert comparison.missing_phases == []


class TestFigureBenchBaselines:
    def _result(self):
        rows = [
            SweepRow(
                model="TN", params={"n": n}, source=RepresentationSource.R,
                group=group, map_score=0.5, per_user_ap={1: 0.5},
                training_seconds=0.3 * n, testing_seconds=0.1 * n,
                phase_seconds={"fit": 0.2 * n, "rank": 0.1 * n},
            )
            for n in (1, 2)
            for group in (UserType.ALL, UserType.INFORMATION_SEEKER)
        ]
        return SweepResult(rows, manifest={"seed": 7})

    def test_write_timing_baseline_uses_all_group_rows(self, tmp_path, monkeypatch):
        monkeypatch.setattr(bench_common, "RESULTS_DIR", tmp_path)
        path = bench_common.write_timing_baseline("fig_test", self._result())
        baseline = load_baseline(path)
        assert path.name == "BENCH_fig_test.json"
        assert set(baseline.phases) == {
            "TN/R/ttime", "TN/R/etime", "TN/R/fit", "TN/R/rank"
        }
        # One sample per configuration, ALL-group rows only.
        ttime = baseline.phases["TN/R/ttime"]["wall_seconds"]
        assert ttime.samples == (0.3, 0.6)
        assert baseline.counters["rows"] == 4.0
        assert baseline.manifest == {"seed": 7}

    def test_bench_trials_honours_the_env_knob(self, monkeypatch):
        monkeypatch.delenv(TRIALS_ENV, raising=False)
        assert bench_common.bench_trials() == 1
        monkeypatch.setenv(TRIALS_ENV, "4")
        assert bench_common.bench_trials() == 4


class TestIncrementalSuite:
    """The streaming-replay suite produces gateable baselines."""

    @pytest.fixture(scope="class")
    def baseline(self):
        from repro.experiments.bench import run_incremental_suite

        return run_incremental_suite(
            scale="tiny", trials=1, warmup=0, models=("TN",), label="inc"
        )

    def test_phases_cover_update_and_rebuild(self, baseline):
        assert set(baseline.phases) == {
            "incremental/TN/R/update",
            "incremental/TN/R/rebuild",
        }
        for metrics in baseline.phases.values():
            assert "wall_seconds" in metrics

    def test_parity_and_speedup_counters(self, baseline):
        assert baseline.counters["incremental.TN.exact"] == 1.0
        assert baseline.counters["incremental.TN.speedup"] > 1.0

    def test_config_records_the_suite(self, baseline):
        assert baseline.config["suite"] == "incremental"
        assert baseline.manifest["command"] == "bench-incremental"

    def test_comparable_to_itself(self, baseline):
        from repro.experiments.bench import run_incremental_suite

        again = run_incremental_suite(
            scale="tiny", trials=1, warmup=1, models=("TN",), label="inc2"
        )
        report = compare_baselines(baseline, again)
        assert not report.missing_phases
        assert not report.added_phases
        gated = {d.phase for d in report.deltas}
        assert gated == set(baseline.phases)

    def test_validation(self):
        from repro.experiments.bench import run_incremental_suite

        with pytest.raises(ConfigurationError):
            run_incremental_suite(scale="galactic")
        with pytest.raises(ConfigurationError):
            run_incremental_suite(scale="tiny", trials=0)
        with pytest.raises(ConfigurationError):
            run_incremental_suite(scale="tiny", models=("NOPE",))
