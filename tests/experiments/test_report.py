"""Tests for the table/figure report builders."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ExperimentPipeline
from repro.core.sources import RepresentationSource
from repro.experiments.configs import ConfigGrid
from repro.experiments.report import (
    format_figure7,
    format_figure_map,
    format_table2,
    format_table3,
    format_table6,
    format_table7,
)
from repro.experiments.runner import SweepRunner
from repro.twitter.entities import UserType
from repro.twitter.stats import group_statistics, language_census


@pytest.fixture(scope="module")
def sweep_result(small_dataset, small_groups):
    pipeline = ExperimentPipeline(small_dataset, seed=1, max_train_docs_per_user=40)
    runner = SweepRunner(pipeline, small_groups)
    grid = ConfigGrid()
    configs = grid.tn_configurations()[:2] + grid.tng_configurations()[:2]
    return runner.run(
        configs, [RepresentationSource.R], groups=[UserType.ALL]
    )


class TestTable2:
    def test_contains_groups_and_blocks(self, small_dataset, small_groups):
        stats = group_statistics(small_dataset, small_groups)
        text = format_table2(stats)
        assert "Outgoing tweets (TR)" in text
        assert "Retweets (R)" in text
        assert "Incoming tweets (E)" in text
        assert "IS" in text and "All Users" in text


class TestTable3:
    def test_lists_languages_with_shares(self, small_dataset):
        census = language_census(small_dataset)
        text = format_table3(census)
        assert "english" in text
        assert "%" in text

    def test_top_k_truncates(self):
        census = {f"lang{i}": 10 - i for i in range(10)}
        text = format_table3(census, top_k=3)
        assert "lang0" in text and "lang5" not in text


class TestFigureMap:
    def test_matrix_contains_models_and_sources(self, sweep_result):
        text = format_figure_map(
            sweep_result, UserType.ALL, [RepresentationSource.R],
            baselines={"RAN": 0.3},
        )
        assert "TN" in text and "TNG" in text
        assert "baseline RAN: MAP=0.300" in text

    def test_missing_source_rendered_as_dash(self, sweep_result):
        text = format_figure_map(
            sweep_result, UserType.ALL, [RepresentationSource.EF]
        )
        assert "-" in text


class TestTable6:
    def test_rows_per_group_and_stat(self, sweep_result):
        text = format_table6(
            sweep_result, [RepresentationSource.R], [UserType.ALL]
        )
        assert "Min" in text and "Mean" in text and "Max" in text
        assert "Average" in text


class TestTable7:
    def test_best_config_listed(self, sweep_result):
        text = format_table7(sweep_result, [RepresentationSource.R])
        assert "TN" in text and "TNG" in text
        assert "n=" in text


class TestFigure7:
    def test_timing_rows(self, sweep_result):
        text = format_figure7(sweep_result)
        assert "TTime" in text and "ETime" in text
        assert "TN" in text
