"""Tests for sweep result persistence."""

from __future__ import annotations

import json

import pytest

from repro.core.sources import RepresentationSource
from repro.experiments.persistence import load_sweep, save_sweep
from repro.experiments.runner import SweepResult, SweepRow
from repro.twitter.entities import UserType


@pytest.fixture()
def sample_result() -> SweepResult:
    rows = [
        SweepRow(
            model="TN",
            params={"n": 1, "weighting": "TF"},
            source=RepresentationSource.R,
            group=UserType.ALL,
            map_score=0.61,
            per_user_ap={3: 0.5, 7: 0.72},
            training_seconds=1.25,
            testing_seconds=0.05,
        ),
        SweepRow(
            model="TNG",
            params={"n": 2, "similarity": "VS"},
            source=RepresentationSource.E,
            group=UserType.INFORMATION_SEEKER,
            map_score=0.4,
            per_user_ap={3: 0.4},
            training_seconds=2.0,
            testing_seconds=0.1,
        ),
    ]
    return SweepResult(rows)


class TestRoundTrip:
    def test_rows_survive(self, sample_result, tmp_path):
        path = save_sweep(sample_result, tmp_path / "sweep.json")
        restored = load_sweep(path)
        assert restored.rows == sample_result.rows

    def test_enums_restored_as_enums(self, sample_result, tmp_path):
        restored = load_sweep(save_sweep(sample_result, tmp_path / "s.json"))
        assert restored.rows[0].source is RepresentationSource.R
        assert restored.rows[1].group is UserType.INFORMATION_SEEKER

    def test_user_ids_restored_as_ints(self, sample_result, tmp_path):
        restored = load_sweep(save_sweep(sample_result, tmp_path / "s.json"))
        assert set(restored.rows[0].per_user_ap) == {3, 7}

    def test_aggregations_work_after_reload(self, sample_result, tmp_path):
        restored = load_sweep(save_sweep(sample_result, tmp_path / "s.json"))
        summary = restored.map_summary("TN", RepresentationSource.R, UserType.ALL)
        assert summary.mean == pytest.approx(0.61)

    def test_creates_parent_directories(self, sample_result, tmp_path):
        path = save_sweep(sample_result, tmp_path / "deep" / "dir" / "s.json")
        assert path.exists()

    def test_unknown_version_rejected(self, sample_result, tmp_path):
        path = save_sweep(sample_result, tmp_path / "s.json")
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_sweep(path)

    def test_empty_result_roundtrips(self, tmp_path):
        restored = load_sweep(save_sweep(SweepResult([]), tmp_path / "s.json"))
        assert restored.rows == []
