"""Tests for the standard benchmark setups."""

from __future__ import annotations

import pytest

from repro.experiments.standard import (
    FIGURE_SOURCES,
    bench_dataset,
    bench_grid,
    bench_setup,
    fast_grid,
)
from repro.twitter.entities import UserType


class TestFigureSources:
    def test_eight_sources(self):
        assert len(FIGURE_SOURCES) == 8

    def test_atomic_sources_included(self):
        values = {s.value for s in FIGURE_SOURCES}
        assert {"T", "R", "F", "E", "C"} <= values


class TestBenchDataset:
    def test_cached(self):
        a = bench_dataset(n_users=12, n_ticks=20, seed=1)
        b = bench_dataset(n_users=12, n_ticks=20, seed=1)
        assert a is b


class TestBenchSetup:
    def test_setup_has_all_pieces(self):
        setup = bench_setup(n_users=16, n_ticks=40, seed=2, group_size=3,
                            min_retweets=3)
        assert setup.dataset.n_users == 16
        assert UserType.ALL in setup.groups
        assert setup.pipeline.dataset is setup.dataset


class TestGrids:
    def test_bench_grid_keeps_paper_structure(self):
        assert bench_grid().total_configurations() == 223

    def test_fast_grid_one_config_per_model(self):
        picks = fast_grid()
        assert len(picks) == 9
        assert sorted({c.model for c in picks}) == [
            "BTM", "CN", "CNG", "HDP", "HLDA", "LDA", "LLDA", "TN", "TNG",
        ]

    def test_fast_grid_configs_buildable(self):
        for config in fast_grid():
            model = config.build()
            assert model.name == config.model
