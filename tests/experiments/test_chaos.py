"""Chaos harness: sweeps complete, quarantine exactly the planned cells,
and survivors stay bit-identical under injected crashes, hangs and flakes.

This is the acceptance suite for the fault-tolerance layer: every test
drives a real sweep through :class:`~repro.faults.FaultPlan` injection
and asserts the supervised executors' three guarantees -- the run
finishes, only the faulted cells are quarantined, and every surviving
row matches the fault-free serial run bit for bit.
"""

from __future__ import annotations

import pytest

from repro.core.sources import RepresentationSource
from repro.experiments.executors import (
    GridSpec,
    PipelineSpec,
    ProcessCellExecutor,
    SerialCellExecutor,
    SweepSpec,
)
from repro.experiments.persistence import SweepJournal
from repro.experiments.report import format_figure_map, format_table6
from repro.experiments.runner import SweepRunner
from repro.experiments.supervision import RetryPolicy, SupervisionPolicy
from repro.faults import FaultPlan, FaultSpec
from repro.obs.events import MemorySink
from repro.obs.telemetry import Telemetry
from repro.twitter.dataset import DatasetConfig, select_user_groups
from repro.twitter.entities import UserType

SPEC = SweepSpec(
    pipeline=PipelineSpec(
        dataset=DatasetConfig(n_users=24, n_ticks=80, seed=11),
        seed=1,
        max_train_docs_per_user=60,
    ),
    grid=GridSpec(topic_scale=0.05, iteration_scale=0.003, infer_iterations=2, seed=0),
)

SOURCES = [RepresentationSource.R]

#: Fast test-sized retry policy: no real backoff sleeps.
FAST_RETRY = RetryPolicy(max_attempts=2, backoff_seconds=0.01, jitter=0.0)


def _configs():
    grid = SPEC.grid.build()
    return grid.all_configurations()["TN"][:3] + grid.tng_configurations()[:2]


def _runner(telemetry=None):
    pipeline = SPEC.pipeline.build(telemetry=telemetry)
    groups = select_user_groups(pipeline.dataset, group_size=5, min_retweets=5)
    return SweepRunner(pipeline, groups, telemetry=telemetry)


def _row_fingerprint(row):
    """Everything about a row except wall-clock timings."""
    return (row.model, tuple(sorted(row.params.items())), row.source, row.group,
            row.map_score, tuple(sorted(row.per_user_ap.items())))


@pytest.fixture(scope="module")
def clean_serial_rows():
    """The fault-free serial reference every chaos run is compared to."""
    result = _runner().run(_configs(), SOURCES, groups=[UserType.ALL])
    assert result.failures == []
    return [_row_fingerprint(row) for row in result.rows]


def _params_key(config) -> str:
    from repro.core.stages import canonical_params

    return canonical_params(config.params)


class TestChaosAcceptance:
    def test_crash_and_hang_quarantine_then_resume_to_parity(
        self, clean_serial_rows, tmp_path
    ):
        """The issue's acceptance scenario, end to end: a worker crash
        plus a stage hang under --jobs 2 completes, quarantines exactly
        the two faulted cells, keeps survivors bit-identical -- and a
        fault-free resume retries only the quarantined cells, landing on
        full serial parity."""
        configs = _configs()
        crash_victim = configs[0]  # a TN cell: worker dies mid-fit
        hang_victim = configs[3]  # a TNG cell: stalls in rank until terminated
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="crash",
                    stage="fit",
                    model=crash_victim.model,
                    params=_params_key(crash_victim),
                ),
                FaultSpec(
                    kind="hang",
                    stage="rank",
                    model=hang_victim.model,
                    params=_params_key(hang_victim),
                    seconds=300.0,
                ),
            )
        )
        policy = SupervisionPolicy(
            timeout_seconds=15.0, retry=RetryPolicy(max_attempts=1)
        )
        journal_path = tmp_path / "chaos.journal.jsonl"
        with SweepJournal(journal_path) as journal:
            chaotic = _runner().run(
                configs,
                SOURCES,
                groups=[UserType.ALL],
                executor=ProcessCellExecutor(
                    SPEC, jobs=2, policy=policy, fault_plan=plan
                ),
                journal=journal,
            )

        # Exactly the two planned cells are quarantined, with the right
        # taxonomy class each.
        failures = {
            (f.model, _params_key_from(f.params)): f.failure for f in chaotic.failures
        }
        assert set(failures) == {
            (crash_victim.model, _params_key(crash_victim)),
            (hang_victim.model, _params_key(hang_victim)),
        }
        crash_failure = failures[(crash_victim.model, _params_key(crash_victim))]
        hang_failure = failures[(hang_victim.model, _params_key(hang_victim))]
        assert crash_failure.kind == "crash"
        assert crash_failure.error == "WorkerCrashError"
        assert "exit code 87" in crash_failure.message
        assert hang_failure.kind == "timeout"
        assert hang_failure.error == "CellTimeoutError"

        # Surviving rows are bit-identical to the fault-free serial
        # reference (same order, minus the quarantined cells' rows).
        survived = [_row_fingerprint(row) for row in chaotic.rows]
        expected_survivors = [
            fp
            for fp in clean_serial_rows
            if (fp[0], dict(fp[1])) not in [
                (crash_victim.model, crash_victim.params),
                (hang_victim.model, hang_victim.params),
            ]
        ]
        assert survived == expected_survivors

        # Resume with faults disabled: only the quarantined cells rerun,
        # and the result reaches full bit-identical parity.
        with SweepJournal(journal_path, resume=True) as journal:
            assert sorted(journal.quarantined()) == sorted(
                f"{m}|R|{p}" for m, p in failures
            )
            telemetry = Telemetry()
            recovered = _runner(telemetry=telemetry).run(
                configs,
                SOURCES,
                groups=[UserType.ALL],
                executor=ProcessCellExecutor(SPEC, jobs=2, policy=policy),
                journal=journal,
            )
        assert recovered.failures == []
        assert [_row_fingerprint(row) for row in recovered.rows] == clean_serial_rows
        metrics = telemetry.metrics.snapshot()
        assert metrics["sweep.cells.requeued"]["value"] == 2
        assert metrics["sweep.cells.restored"]["value"] == len(configs) - 2

    def test_flaky_cell_recovers_under_retry(self, clean_serial_rows):
        """A fault bounded by ``times=1`` fails the first attempt only:
        the supervisor retries, the cell succeeds, nothing is lost."""
        configs = _configs()
        flaky = configs[1]
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="raise",
                    stage="fit",
                    model=flaky.model,
                    params=_params_key(flaky),
                    times=1,
                ),
            )
        )
        telemetry = Telemetry()
        result = _runner(telemetry=telemetry).run(
            configs,
            SOURCES,
            groups=[UserType.ALL],
            executor=ProcessCellExecutor(
                SPEC, jobs=2, policy=SupervisionPolicy(retry=FAST_RETRY),
                fault_plan=plan,
            ),
        )
        assert result.failures == []
        assert [_row_fingerprint(row) for row in result.rows] == clean_serial_rows
        metrics = telemetry.metrics.snapshot()
        assert metrics["sweep.cell.retry"]["value"] == 1


def _params_key_from(params: dict) -> str:
    from repro.core.stages import canonical_params

    return canonical_params(params)


class TestSerialChaos:
    def test_raise_fault_quarantines_without_aborting(self):
        configs = _configs()[:3]
        victim = configs[2]
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="raise",
                    stage="profiles",
                    model=victim.model,
                    params=_params_key(victim),
                ),
            )
        )
        telemetry = Telemetry()
        sink = MemorySink()
        telemetry.events.add_sink(sink)
        runner = _runner(telemetry=telemetry)
        result = runner.run(
            configs,
            SOURCES,
            groups=[UserType.ALL],
            executor=SerialCellExecutor(
                runner.pipeline,
                policy=SupervisionPolicy(retry=FAST_RETRY),
                fault_plan=plan,
            ),
        )
        (failed,) = result.failures
        assert failed.model == victim.model
        assert failed.failure.kind == "error"
        assert failed.failure.error == "InjectedFaultError"
        assert failed.failure.attempts == FAST_RETRY.max_attempts
        metrics = telemetry.metrics.snapshot()
        assert metrics["sweep.cell.retry"]["value"] == 1
        assert metrics["sweep.cell.quarantined"]["value"] == 1
        quarantine_events = sink.of("cell_quarantined")
        assert len(quarantine_events) == 1
        assert quarantine_events[0]["kind"] == "error"

    def test_flaky_cell_recovers_serially(self, clean_serial_rows):
        configs = _configs()
        plan = FaultPlan(
            faults=(FaultSpec(kind="raise", stage="fit", model="TN", times=1),)
        )
        runner = _runner()
        result = runner.run(
            configs,
            SOURCES,
            groups=[UserType.ALL],
            executor=SerialCellExecutor(
                runner.pipeline,
                policy=SupervisionPolicy(retry=FAST_RETRY),
                fault_plan=plan,
            ),
        )
        assert result.failures == []
        assert [_row_fingerprint(row) for row in result.rows] == clean_serial_rows


class TestFailureReporting:
    @pytest.fixture(scope="class")
    def partial_result(self):
        configs = _configs()[:3]
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="raise",
                    stage="fit",
                    model=configs[0].model,
                    params=_params_key(configs[0]),
                ),
            )
        )
        runner = _runner()
        return runner.run(
            configs,
            SOURCES,
            groups=[UserType.ALL],
            executor=SerialCellExecutor(
                runner.pipeline,
                policy=SupervisionPolicy(retry=RetryPolicy(max_attempts=1)),
                fault_plan=plan,
            ),
        )

    def test_cell_count_includes_failures(self, partial_result):
        assert partial_result.cell_count() == 3
        assert len(partial_result.failures) == 1

    def test_annotation_names_the_damage(self, partial_result):
        annotation = partial_result.failure_annotation()
        assert "1/3 cells failed" in annotation
        assert "error" in annotation
        assert "--resume" in annotation

    def test_reports_carry_the_annotation(self, partial_result):
        figure = format_figure_map(partial_result, UserType.ALL, SOURCES)
        table = format_table6(partial_result, SOURCES, [UserType.ALL])
        for rendered in (figure, table):
            assert "1/3 cells failed" in rendered.splitlines()[-1]

    def test_clean_results_have_no_annotation(self, clean_serial_rows):
        result = _runner().run(_configs()[:1], SOURCES, groups=[UserType.ALL])
        assert result.failure_annotation() == ""
        rendered = format_figure_map(result, UserType.ALL, SOURCES)
        assert "failed" not in rendered
