"""Worker/attempt attribution through absorb, and trace-export parity.

The contract: a ``--jobs N`` sweep's exported trace contains the same
cell span set as a serial sweep's — the only difference is attribution
(worker/attempt attributes, and therefore chrome-trace tid lanes). The
supervisor stamps ``worker``/``attempt`` onto the outcome's telemetry
payload at join time and :meth:`Telemetry.absorb` carries them onto the
attached spans and forwarded events.
"""

from __future__ import annotations

import pytest

from repro.core.sources import RepresentationSource
from repro.experiments.executors import ProcessCellExecutor, SweepSpec
from repro.obs.events import MemorySink
from repro.obs.export import chrome_trace_events
from repro.obs.telemetry import Telemetry
from repro.twitter.entities import UserType

from tests.experiments.test_executors import SPEC, _configs, _runner

#: Attribution attributes the parallel run adds and the serial one lacks.
_ATTRIBUTION = ("worker", "attempt")


def _cell_span_set(trace: dict) -> list[tuple]:
    """Flattened multiset of the cell subtrees' spans, attribution-free.

    Only ``config`` subtrees are compared: artifact-cache ``*.build``
    spans outside (and inside) them depend on which process happened to
    prepare a corpus first, which is scheduling, not evaluation.
    """
    def flatten(span, out):
        if not span["name"].endswith(".build"):
            attrs = tuple(sorted(
                (k, v) for k, v in span.get("attributes", {}).items()
                if k not in _ATTRIBUTION
            ))
            out.append((span["name"], attrs))
        for child in span.get("children", ()):
            flatten(child, out)

    def collect(span, out):
        if span["name"] == "config":
            flatten(span, out)
            return
        for child in span.get("children", ()):
            collect(child, out)

    found: list[tuple] = []
    for root in trace.get("spans", ()):
        collect(root, found)
    return sorted(found)


class TestAbsorbAttribution:
    def test_absorb_stamps_spans_and_events(self):
        parent = Telemetry()
        sink = MemorySink()
        parent.events.add_sink(sink)
        parent.absorb(
            {
                "worker": 3,
                "attempt": 2,
                "spans": [{"name": "config", "duration": 1.0,
                           "attributes": {"label": "TN"}}],
                "events": [{"event": "model_fitted", "ts": 0.0, "seq": 1}],
            }
        )
        (span,) = parent.tracer.roots
        assert span.attributes["worker"] == 3
        assert span.attributes["attempt"] == 2
        (record,) = sink.records
        assert record["worker"] == 3 and record["attempt"] == 2
        assert record["worker_seq"] == 1  # forward preserved the ordinal

    def test_absorb_never_overwrites_existing_attribution(self):
        parent = Telemetry()
        parent.absorb(
            {
                "worker": 5,
                "spans": [{"name": "config", "attributes": {"worker": 1}}],
            }
        )
        (span,) = parent.tracer.roots
        assert span.attributes["worker"] == 1  # setdefault semantics

    def test_absorb_without_attribution_leaves_spans_bare(self):
        parent = Telemetry()
        parent.absorb({"spans": [{"name": "config", "duration": 1.0}]})
        (span,) = parent.tracer.roots
        assert "worker" not in span.attributes


class TestExportParity:
    """Serial and process-pool sweeps export the same cell span set."""

    @pytest.fixture(scope="class")
    def traces(self):
        configs = _configs()[:3]
        sources = [RepresentationSource.R]

        serial_tel = Telemetry()
        _runner(telemetry=serial_tel).run(
            configs, sources, groups=[UserType.ALL]
        )
        parallel_tel = Telemetry()
        _runner(telemetry=parallel_tel).run(
            configs, sources, groups=[UserType.ALL],
            executor=ProcessCellExecutor(SPEC, jobs=2),
        )
        return serial_tel.trace_payload(), parallel_tel.trace_payload()

    def test_cell_span_sets_identical(self, traces):
        serial, parallel = traces
        assert _cell_span_set(serial) == _cell_span_set(parallel)
        assert len(_cell_span_set(serial)) > 0

    def test_parallel_cells_carry_worker_attribution(self, traces):
        _serial, parallel = traces
        sweep = next(s for s in parallel["spans"] if s["name"] == "sweep")
        cells = [c for c in sweep["children"] if c["name"] == "config"]
        assert cells
        for cell in cells:
            assert cell["attributes"]["worker"] in (0, 1)
            assert cell["attributes"]["attempt"] == 1

    def test_serial_cells_stay_on_the_main_lane(self, traces):
        serial, _parallel = traces
        events = chrome_trace_events(serial)
        assert {e["tid"] for e in events if e["ph"] == "X"} == {0}

    def test_parallel_export_has_one_lane_per_worker(self, traces):
        _serial, parallel = traces
        events = chrome_trace_events(parallel)
        cell_lanes = {
            e["tid"] for e in events
            if e["ph"] == "X" and e["name"] == "config"
        }
        # jobs=2 -> worker lanes 1 and 2; the sweep span stays on lane 0.
        assert cell_lanes <= {1, 2} and len(cell_lanes) >= 1
        sweep_lane = next(
            e["tid"] for e in events
            if e["ph"] == "X" and e["name"] == "sweep"
        )
        assert sweep_lane == 0
        lane_names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "main" in lane_names
        assert any(name.startswith("worker-") for name in lane_names)
