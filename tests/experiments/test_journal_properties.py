"""Property-based tests for journal resume under random torn tails.

Hypothesis truncates a well-formed journal at arbitrary byte offsets --
the residue of a kill at any moment -- and the scanner must restore
exactly the records whose final newline made it to disk, sanitize the
tail, and accept re-recorded cells up to a full restore. No torn tail
may ever surface as a completed cell.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.experiments.executors import Cell, CellOutcome  # noqa: E402
from repro.experiments.persistence import SweepJournal  # noqa: E402


def _cell(index: int) -> Cell:
    return Cell(
        model="TN",
        params={"n": index},
        label=f"TN(n={index})",
        source="R",
        users=(1, 2),
    )


def _outcome(index: int) -> CellOutcome:
    return CellOutcome(
        model="TN",
        params={"n": index},
        source="R",
        per_user_ap={1: 0.25 * (index % 4), 2: 0.5},
        training_seconds=float(index),
        testing_seconds=0.125,
    )


def _write_journal(path: Path, n_cells: int) -> str:
    with SweepJournal(path) as journal:
        for index in range(n_cells):
            journal.record(_cell(index), _outcome(index))
    return path.read_text(encoding="utf-8")


@settings(max_examples=60, deadline=None)
@given(
    n_cells=st.integers(min_value=0, max_value=6),
    cut_back=st.integers(min_value=0, max_value=400),
)
def test_truncated_journal_restores_exactly_the_complete_records(n_cells, cut_back):
    """Cut ``cut_back`` bytes off the end (never into the header): the
    restored cells are exactly those whose record line survived whole."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "j.jsonl"
        text = _write_journal(path, n_cells)
        header_end = text.index("\n") + 1
        cut = max(header_end, len(text) - cut_back)
        truncated = text[:cut]
        path.write_text(truncated, encoding="utf-8")

        # Ground truth: record lines whose trailing newline survived the
        # cut are complete. The final piece is torn -- unless the cut
        # removed *only* the newline, leaving a whole record: a prefix of
        # a JSON object never parses, so "parses at all" means "whole".
        pieces = truncated[header_end:].split("\n")
        expected = {json.loads(line)["cell"] for line in pieces[:-1] if line}
        if pieces[-1]:
            try:
                expected.add(json.loads(pieces[-1])["cell"])
            except json.JSONDecodeError:
                pass

        with SweepJournal(path, resume=True) as journal:
            assert journal.restored == len(expected)
            for key in expected:
                assert key in journal

            # Re-record everything the cut destroyed; the journal must
            # then round-trip to a full restore.
            for index in range(n_cells):
                if _cell(index).key not in journal:
                    journal.record(_cell(index), _outcome(index))

        with SweepJournal(path, resume=True) as journal:
            assert journal.restored == n_cells
            for index in range(n_cells):
                restored = journal.outcome(_cell(index).key)
                assert restored.per_user_ap == _outcome(index).per_user_ap
                assert restored.training_seconds == _outcome(index).training_seconds


@settings(max_examples=40, deadline=None)
@given(
    n_cells=st.integers(min_value=1, max_value=5),
    tail=st.text(
        alphabet=st.characters(blacklist_characters="\n", blacklist_categories=("Cs",)),
        max_size=80,
    ),
)
def test_arbitrary_tail_garbage_never_becomes_a_cell(n_cells, tail):
    """Whatever single-line garbage a dying process appends -- partial
    JSON, valid-but-incomplete JSON, binary noise -- resume restores the
    intact records and never invents a cell from the tail."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "j.jsonl"
        text = _write_journal(path, n_cells)
        path.write_text(text + tail, encoding="utf-8")
        try:
            journal = SweepJournal(path, resume=True)
        except ValueError:
            # A tail that parses as a *complete, valid* record object is
            # indistinguishable from data and may legitimately load; a
            # tail the scanner rejects outright is also fine. What it
            # must never do is silently restore a non-record tail.
            return
        with journal:
            assert journal.restored in (n_cells, n_cells + 1)
            for index in range(n_cells):
                assert _cell(index).key in journal
