"""Tests for the paper's 223-configuration grid."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.configs import MODEL_NAMES, ConfigGrid


@pytest.fixture(scope="module")
def grid() -> ConfigGrid:
    return ConfigGrid(topic_scale=0.1, iteration_scale=0.01, infer_iterations=2)


class TestGridCounts:
    """Configuration counts from the paper's Tables 4 and 5."""

    @pytest.mark.parametrize("model,count", [
        ("TN", 36), ("CN", 21), ("TNG", 9), ("CNG", 9),
        ("LDA", 48), ("LLDA", 48), ("BTM", 24), ("HDP", 12), ("HLDA", 16),
    ])
    def test_per_model_counts(self, grid, model, count):
        assert len(grid.all_configurations()[model]) == count

    def test_total_is_223(self, grid):
        assert grid.total_configurations() == 223

    def test_iter_all_matches_total(self, grid):
        assert len(list(grid.iter_all())) == 223

    def test_model_names_cover_grid(self, grid):
        assert set(grid.all_configurations()) == set(MODEL_NAMES)


class TestConfigurationValidity:
    def test_every_config_buildable(self, grid):
        for config in grid.iter_all():
            model = config.build()
            assert model.name == config.model

    def test_no_invalid_bag_combinations(self, grid):
        for config in grid.all_configurations()["TN"]:
            params = config.params
            if params["similarity"] == "JS":
                assert params["weighting"] == "BF"
            if params["similarity"] == "GJS":
                assert params["weighting"] != "BF"
            if params["weighting"] == "BF":
                assert params["aggregation"] == "sum"
            if params["aggregation"] == "rocchio":
                assert params["similarity"] == "CS"

    def test_cn_never_uses_tf_idf(self, grid):
        for config in grid.all_configurations()["CN"]:
            assert config.params["weighting"] != "TF-IDF"

    def test_hlda_only_user_pooling(self, grid):
        for config in grid.all_configurations()["HLDA"]:
            model = config.build()
            assert model.pooling.value == "UP"

    def test_fresh_instance_per_build(self, grid):
        config = grid.all_configurations()["TN"][0]
        assert config.build() is not config.build()

    def test_uses_rocchio_flag(self, grid):
        rocchio = [c for c in grid.all_configurations()["LDA"] if c.uses_rocchio]
        assert len(rocchio) == 24  # half of the 48 LDA configs

    def test_label_contains_params(self, grid):
        config = grid.all_configurations()["TNG"][0]
        assert config.label().startswith("TNG(")
        assert "similarity=" in config.label()


class TestScaling:
    def test_topic_scale_shrinks_topics(self):
        scaled = ConfigGrid(topic_scale=0.1)
        ks = {c.params["n_topics"] for c in scaled.all_configurations()["LDA"]}
        assert ks == {5, 10, 15, 20}

    def test_full_scale_matches_paper(self):
        full = ConfigGrid()
        ks = {c.params["n_topics"] for c in full.all_configurations()["BTM"]}
        assert ks == {50, 100, 150, 200}

    def test_iteration_scale(self):
        scaled = ConfigGrid(iteration_scale=0.01)
        iters = {c.params["iterations"] for c in scaled.all_configurations()["LDA"]}
        assert iters == {10, 20}

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ConfigGrid(topic_scale=0.0)

    def test_btm_max_biterms_forwarded(self):
        grid = ConfigGrid(btm_max_biterms=123)
        model = grid.all_configurations()["BTM"][0].build()
        assert model.max_biterms == 123
