"""Tests for the paper's 223-configuration grid."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.configs import MODEL_NAMES, ConfigGrid


@pytest.fixture(scope="module")
def grid() -> ConfigGrid:
    return ConfigGrid(topic_scale=0.1, iteration_scale=0.01, infer_iterations=2)


class TestGridCounts:
    """Configuration counts from the paper's Tables 4 and 5."""

    @pytest.mark.parametrize("model,count", [
        ("TN", 36), ("CN", 21), ("TNG", 9), ("CNG", 9),
        ("LDA", 48), ("LLDA", 48), ("BTM", 24), ("HDP", 12), ("HLDA", 16),
    ])
    def test_per_model_counts(self, grid, model, count):
        assert len(grid.all_configurations()[model]) == count

    def test_total_is_223(self, grid):
        assert grid.total_configurations() == 223

    def test_iter_all_matches_total(self, grid):
        assert len(list(grid.iter_all())) == 223

    def test_model_names_cover_grid(self, grid):
        assert set(grid.all_configurations()) == set(MODEL_NAMES)


class TestConfigurationValidity:
    def test_every_config_buildable(self, grid):
        for config in grid.iter_all():
            model = config.build()
            assert model.name == config.model

    def test_no_invalid_bag_combinations(self, grid):
        for config in grid.all_configurations()["TN"]:
            params = config.params
            if params["similarity"] == "JS":
                assert params["weighting"] == "BF"
            if params["similarity"] == "GJS":
                assert params["weighting"] != "BF"
            if params["weighting"] == "BF":
                assert params["aggregation"] == "sum"
            if params["aggregation"] == "rocchio":
                assert params["similarity"] == "CS"

    def test_cn_never_uses_tf_idf(self, grid):
        for config in grid.all_configurations()["CN"]:
            assert config.params["weighting"] != "TF-IDF"

    def test_hlda_only_user_pooling(self, grid):
        for config in grid.all_configurations()["HLDA"]:
            model = config.build()
            assert model.pooling.value == "UP"

    def test_fresh_instance_per_build(self, grid):
        config = grid.all_configurations()["TN"][0]
        assert config.build() is not config.build()

    def test_uses_rocchio_flag(self, grid):
        rocchio = [c for c in grid.all_configurations()["LDA"] if c.uses_rocchio]
        assert len(rocchio) == 24  # half of the 48 LDA configs

    def test_label_contains_params(self, grid):
        config = grid.all_configurations()["TNG"][0]
        assert config.label().startswith("TNG(")
        assert "similarity=" in config.label()


class TestScaling:
    def test_topic_scale_shrinks_topics(self):
        scaled = ConfigGrid(topic_scale=0.1)
        ks = {c.params["n_topics"] for c in scaled.all_configurations()["LDA"]}
        assert ks == {5, 10, 15, 20}

    def test_full_scale_matches_paper(self):
        full = ConfigGrid()
        ks = {c.params["n_topics"] for c in full.all_configurations()["BTM"]}
        assert ks == {50, 100, 150, 200}

    def test_iteration_scale(self):
        scaled = ConfigGrid(iteration_scale=0.01)
        iters = {c.params["iterations"] for c in scaled.all_configurations()["LDA"]}
        assert iters == {10, 20}

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ConfigGrid(topic_scale=0.0)

    def test_btm_max_biterms_forwarded(self):
        grid = ConfigGrid(btm_max_biterms=123)
        model = grid.all_configurations()["BTM"][0].build()
        assert model.max_biterms == 123


class TestTemporalAxis:
    """Crossing the grid with the temporal-weighting axis."""

    def _axis(self):
        from repro.core.temporal import NO_DECAY, TemporalWeighting

        return (
            NO_DECAY,
            TemporalWeighting(kind="window", window=20),
            TemporalWeighting(kind="half-life", half_life=10),
        )

    def test_empty_axis_is_identity(self):
        from repro.experiments.configs import cross_temporal
        from repro.experiments.standard import fast_grid

        configs = fast_grid()
        assert cross_temporal(configs, ()) == list(configs)

    def test_axis_multiplies_configurations(self):
        from repro.experiments.configs import cross_temporal
        from repro.experiments.standard import fast_grid

        configs = fast_grid()
        crossed = cross_temporal(configs, self._axis())
        assert len(crossed) == 3 * len(configs)

    def test_identity_point_keeps_params_byte_identical(self):
        from repro.experiments.configs import cross_temporal
        from repro.experiments.standard import fast_grid

        config = fast_grid()[0]
        crossed = cross_temporal([config], self._axis())
        assert crossed[0].params == config.params
        assert "temporal" in crossed[1].params
        assert crossed[1].params["temporal"] == "window:20"
        assert crossed[2].params["temporal"] == "half-life:10"

    def test_factory_attaches_the_weighting(self):
        from repro.experiments.configs import cross_temporal
        from repro.experiments.standard import fast_grid

        config = next(c for c in fast_grid() if c.model == "TN")
        crossed = cross_temporal([config], self._axis())
        assert crossed[0].build().temporal is None
        built = crossed[2].build()
        assert built.temporal is not None
        assert built.temporal.half_life == 10

    def test_grid_crosses_every_family(self, grid):
        axis_grid = ConfigGrid(
            topic_scale=0.1,
            iteration_scale=0.01,
            infer_iterations=2,
            temporal_axis=self._axis(),
        )
        assert axis_grid.total_configurations() == 3 * grid.total_configurations()

    def test_grid_spec_roundtrips_the_axis(self):
        import pickle

        from repro.experiments.executors import GridSpec

        grid = ConfigGrid(temporal_axis=self._axis())
        spec = GridSpec.from_grid(grid)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.temporal_axis == spec.temporal_axis == self._axis()
        assert clone.build().temporal_axis == self._axis()
