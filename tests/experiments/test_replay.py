"""Tests for the streaming replay driver (``repro replay``).

The load-bearing properties: incremental profiles are bit-identical to
batch rebuilds at every chunk boundary for bag and graph models (and for
topic models under deterministic inference), and a ``--jobs`` replay
produces the same per-user digests as a serial one.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.bench import replay_suite_spec
from repro.experiments.replay import (
    ModelReplay,
    UserReplay,
    profile_delta,
    profile_digest,
    run_replay,
)
from repro.models.graph import NGramGraph

#: Two exactness-guaranteed families keep the suite fast; the topic
#: family's replay is covered by the digest-parity test below and by
#: tests/models/test_profile_state.py at the protocol level.
SPEC = dataclasses.replace(replay_suite_spec(scale="tiny"), models=("TN", "TNG"))


class TestSpecValidation:
    def test_zero_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(SPEC, chunk_size=0)

    def test_empty_models_rejected(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(SPEC, models=())

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(SPEC, source="bogus")

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            run_replay(dataclasses.replace(SPEC, models=("NOPE",)))

    def test_zero_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_replay(SPEC, jobs=0)

    def test_spec_is_picklable(self):
        import pickle

        assert pickle.loads(pickle.dumps(SPEC)) == SPEC


class TestProfileComparison:
    def test_equal_dicts(self):
        assert profile_delta({"a": 1.0}, {"a": 1.0}) == 0.0

    def test_differing_dicts(self):
        assert profile_delta({"a": 1.0}, {"a": 1.5, "b": 0.25}) == 0.5

    def test_equal_graphs(self):
        g = NGramGraph({("a", "b"): 1.0})
        assert profile_delta(g, NGramGraph({("a", "b"): 1.0})) == 0.0

    def test_differing_graphs(self):
        g1 = NGramGraph({("a", "b"): 1.0})
        g2 = NGramGraph({("a", "b"): 0.5})
        assert profile_delta(g1, g2) == 0.5

    def test_equal_arrays(self):
        a = np.array([0.25, 0.75])
        assert profile_delta(a, a.copy()) == 0.0

    def test_shape_mismatch_is_incomparable(self):
        assert profile_delta(np.zeros(3), np.zeros(4)) == float("inf")

    def test_type_mismatch_is_incomparable(self):
        assert profile_delta({"a": 1.0}, np.zeros(2)) == float("inf")

    def test_digest_is_stable_and_sensitive(self):
        assert profile_digest({"a": 1.0}) == profile_digest({"a": 1.0})
        assert profile_digest({"a": 1.0}) != profile_digest({"a": 1.0000001})
        assert profile_digest(np.array([1.0])) != profile_digest(np.array([2.0]))


class TestSerialReplay:
    @pytest.fixture(scope="class")
    def replays(self):
        return run_replay(SPEC)

    def test_results_follow_spec_model_order(self, replays):
        assert [r.model for r in replays] == list(SPEC.models)

    def test_bag_and_graph_are_bit_exact(self, replays):
        for replay in replays:
            assert replay.exact, f"{replay.model} diverged: {replay.max_delta}"
            assert replay.max_delta == 0.0
            assert replay.parity_ok(tolerance=0.0)

    def test_every_user_streamed_updates(self, replays):
        for replay in replays:
            assert replay.users
            for user in replay.users:
                assert user.updates == user.docs  # chunk_size=1
                assert user.digest
                assert user.update_seconds >= 0.0
                assert user.rebuild_seconds >= user.final_rebuild_seconds >= 0.0

    def test_incremental_updates_cheaper_than_rebuild(self, replays):
        """The cost asymmetry exists (the calibrated >=5x claim is
        checked by the bench gate, not a unit test -- CI machines are
        noisy)."""
        for replay in replays:
            assert replay.speedup > 1.0, f"{replay.model}: {replay.speedup}"

    def test_to_dict_roundtrips_schema(self, replays):
        payload = replays[0].to_dict()
        assert payload["model"] == "TN"
        assert set(payload) == {
            "model", "source", "params", "exact", "max_delta",
            "update_seconds", "rebuild_seconds", "mean_update_seconds",
            "mean_full_rebuild_seconds", "speedup", "users",
        }
        assert set(payload["users"][0]) == {
            "user", "docs", "updates", "exact", "max_delta", "digest",
            "update_seconds", "rebuild_seconds", "final_rebuild_seconds",
        }

    def test_chunked_stream_stays_exact(self):
        chunked = run_replay(dataclasses.replace(SPEC, chunk_size=3))
        for replay in chunked:
            assert replay.exact
            for user in replay.users:
                assert user.updates == -(-user.docs // 3)  # ceil division

    def test_jobs_replay_matches_serial_digests(self, replays):
        """Serial and --jobs runs agree bit for bit, user by user."""
        spec = dataclasses.replace(SPEC, models=("TN",))
        parallel = run_replay(spec, jobs=2)
        serial_tn = next(r for r in replays if r.model == "TN")
        assert [u.user for u in parallel[0].users] == [
            u.user for u in serial_tn.users
        ]
        assert [u.digest for u in parallel[0].users] == [
            u.digest for u in serial_tn.users
        ]
        assert parallel[0].exact


class TestAggregates:
    def _user(self, **overrides):
        base = dict(
            user=1, docs=4, updates=4, exact=True, max_delta=0.0, digest="d",
            update_seconds=0.1, rebuild_seconds=0.8, final_rebuild_seconds=0.4,
        )
        base.update(overrides)
        return UserReplay(**base)

    def test_speedup_is_rebuild_over_update(self):
        replay = ModelReplay(
            model="TN", source="R", params={}, users=(self._user(),)
        )
        assert replay.mean_update_seconds == pytest.approx(0.025)
        assert replay.mean_full_rebuild_seconds == pytest.approx(0.4)
        assert replay.speedup == pytest.approx(16.0)

    def test_zero_updates_degenerate_speedup(self):
        empty = ModelReplay(model="TN", source="R", params={}, users=())
        assert empty.speedup == 1.0
        assert empty.exact
        assert empty.max_delta == 0.0

    def test_parity_tolerance(self):
        replay = ModelReplay(
            model="LDA", source="R", params={},
            users=(self._user(exact=False, max_delta=1e-9),),
        )
        assert not replay.parity_ok(tolerance=0.0)
        assert replay.parity_ok(tolerance=1e-8)
