"""Tests for the pairwise model-significance report."""

from __future__ import annotations

import pytest

from repro.core.sources import RepresentationSource
from repro.experiments.runner import SweepResult, SweepRow
from repro.experiments.significance import (
    compare_models,
    format_significance_matrix,
    significance_matrix,
)
from repro.twitter.entities import UserType


def make_row(model: str, per_user_ap: dict[int, float], map_score: float) -> SweepRow:
    return SweepRow(
        model=model,
        params={"n": 1},
        source=RepresentationSource.R,
        group=UserType.ALL,
        map_score=map_score,
        per_user_ap=per_user_ap,
        training_seconds=0.0,
        testing_seconds=0.0,
    )


@pytest.fixture()
def result() -> SweepResult:
    users = list(range(20))
    strong = {u: 0.8 + 0.005 * u for u in users}
    weak = {u: 0.2 + 0.005 * u for u in users}
    mid = {u: 0.5 + 0.01 * ((u * 7) % 5) for u in users}
    return SweepResult([
        make_row("TNG", strong, 0.85),
        make_row("TNG", weak, 0.25),  # a bad configuration -- must be ignored
        make_row("TN", mid, 0.52),
        make_row("LDA", weak, 0.25),
    ])


class TestCompareModels:
    def test_clear_dominance_is_significant(self, result):
        test = compare_models(result, "TNG", "LDA", RepresentationSource.R)
        assert test.significant()

    def test_uses_best_configuration(self, result):
        # TNG's best config dominates TN; if the weak TNG config were
        # used instead, the direction would flip.
        test = compare_models(result, "TNG", "TN", RepresentationSource.R)
        assert test.significant()

    def test_missing_model_raises(self, result):
        with pytest.raises(KeyError):
            compare_models(result, "TNG", "BTM", RepresentationSource.R)

    def test_disjoint_users_raise(self):
        result = SweepResult([
            make_row("A", {1: 0.5}, 0.5),
            make_row("B", {2: 0.5}, 0.5),
        ])
        with pytest.raises(ValueError):
            compare_models(result, "A", "B", RepresentationSource.R)


class TestMatrix:
    def test_all_pairs_present(self, result):
        matrix = significance_matrix(result, RepresentationSource.R)
        models = result.models()
        expected_pairs = len(models) * (len(models) - 1) // 2
        assert len(matrix) == expected_pairs

    def test_explicit_model_list(self, result):
        matrix = significance_matrix(
            result, RepresentationSource.R, models=["TNG", "LDA"]
        )
        assert set(matrix) == {("TNG", "LDA")}

    def test_formatting_marks_significance(self, result):
        matrix = significance_matrix(result, RepresentationSource.R)
        text = format_significance_matrix(matrix)
        assert "LDA vs TNG" in text
        assert "*" in text
