"""The exception taxonomy contract enforced by reprolint rule RPR004."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    DataGenerationError,
    EmptyCorpusError,
    NotFittedError,
    PersistenceError,
    ReproError,
    ValidationError,
)

ALL_ERRORS = [
    ConfigurationError,
    DataGenerationError,
    EmptyCorpusError,
    NotFittedError,
    PersistenceError,
    ValidationError,
]


@pytest.mark.parametrize("exc_type", ALL_ERRORS)
def test_every_library_error_is_a_repro_error(exc_type):
    assert issubclass(exc_type, ReproError)


@pytest.mark.parametrize("exc_type", [ValidationError, PersistenceError])
def test_builtin_replacements_keep_value_error_compat(exc_type):
    # Pre-taxonomy call sites wrote `except ValueError`; the replacement
    # types inherit the builtin so those call sites still work.
    assert issubclass(exc_type, ValueError)
    with pytest.raises(ValueError):
        raise exc_type("compat")


def test_taxonomy_catchable_as_one_family():
    with pytest.raises(ReproError):
        raise ValidationError("caught as family")
