"""Tests for the paired significance tests (validated against scipy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.significance import paired_t_test, wilcoxon_signed_rank

scipy_stats = pytest.importorskip("scipy.stats")


class TestPairedT:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.5, 0.1, size=30)
        b = a + rng.normal(0.05, 0.05, size=30)
        ours = paired_t_test(list(a), list(b))
        theirs = scipy_stats.ttest_rel(a, b)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_identical_samples_not_significant(self):
        result = paired_t_test([0.1, 0.2, 0.3], [0.1, 0.2, 0.3])
        assert result.p_value == 1.0
        assert not result.significant()

    def test_constant_shift_maximally_significant(self):
        result = paired_t_test([1.0, 2.0, 3.0], [0.5, 1.5, 2.5])
        assert result.p_value == 0.0
        assert result.significant()

    def test_large_difference_significant(self):
        a = [0.9] * 10
        b = [0.1 + 0.01 * i for i in range(10)]
        assert paired_t_test(a, b).significant()

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0, 2.0])

    def test_too_few_pairs(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [2.0])


class TestWilcoxon:
    def test_matches_scipy_approximation(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.5, 0.1, size=40)
        b = a + rng.normal(0.04, 0.08, size=40)
        ours = wilcoxon_signed_rank(list(a), list(b))
        theirs = scipy_stats.wilcoxon(a, b, correction=True, mode="approx")
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=0.05)

    def test_identical_samples(self):
        result = wilcoxon_signed_rank([1.0, 2.0], [1.0, 2.0])
        assert result.p_value == 1.0

    def test_clear_difference_significant(self):
        a = [0.8 + 0.01 * i for i in range(15)]
        b = [0.2 + 0.01 * i for i in range(15)]
        assert wilcoxon_signed_rank(a, b).significant()

    def test_symmetric_noise_not_significant(self):
        rng = np.random.default_rng(2)
        a = list(rng.normal(0.5, 0.1, size=30))
        b = list(np.array(a) + rng.normal(0.0, 0.001, size=30))
        result = wilcoxon_signed_rank(a, b)
        assert result.p_value > 0.05

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0], [1.0, 2.0])

    def test_handles_ties_in_magnitudes(self):
        a = [1.0, 2.0, 3.0, 4.0]
        b = [0.5, 1.5, 3.5, 4.5]  # |diffs| all 0.5 -- fully tied ranks
        result = wilcoxon_signed_rank(a, b)
        assert 0.0 <= result.p_value <= 1.0
