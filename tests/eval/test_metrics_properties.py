"""Property-based tests for the paper's effectiveness metrics.

Hypothesis searches the input space the unit tests sample by hand:
arbitrary relevance vectors and AP mappings must keep every metric in
[0, 1], keep ``map_over_users`` independent of dict insertion order
(the RPR002 invariant the journal-resume parity guarantees rest on),
and keep AP monotone when a relevant item moves up the ranking.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.eval.metrics import (  # noqa: E402
    average_precision,
    map_over_users,
    mean_average_precision,
    precision_at,
    summarize_maps,
)

relevance_lists = st.lists(st.booleans(), max_size=60)
ap_values = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
ap_mappings = st.dictionaries(
    st.integers(min_value=0, max_value=10_000), ap_values, min_size=1, max_size=40
)


class TestBounds:
    @given(relevance=relevance_lists)
    def test_average_precision_in_unit_interval(self, relevance):
        assert 0.0 <= average_precision(relevance) <= 1.0

    @given(relevance=relevance_lists, n=st.integers(min_value=1, max_value=80))
    def test_precision_at_in_unit_interval(self, relevance, n):
        assert 0.0 <= precision_at(relevance, n) <= 1.0

    @given(aps=st.lists(ap_values, max_size=40))
    def test_mean_average_precision_in_unit_interval(self, aps):
        assert 0.0 <= mean_average_precision(aps) <= 1.0

    @given(per_user=ap_mappings)
    def test_summary_orders_min_mean_max(self, per_user):
        summary = summarize_maps(list(per_user.values()))
        # sum(values)/n can land a few ULP outside [min, max] (e.g. three
        # identical values), so the ordering holds up to rounding only.
        slack = 1e-12
        assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
        assert summary.deviation >= 0.0


class TestPermutationInvariance:
    @given(per_user=ap_mappings, seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_map_over_users_ignores_insertion_order(self, per_user, seed):
        """The invariant journal-restored sweeps rely on: MAP is a pure
        function of the (user, AP) *set*, not of dict insertion order."""
        import random

        items = list(per_user.items())
        random.Random(seed).shuffle(items)
        shuffled = dict(items)
        assert map_over_users(shuffled) == map_over_users(per_user)

    @given(per_user=ap_mappings)
    def test_map_over_users_matches_sorted_mean(self, per_user):
        expected = mean_average_precision(
            [per_user[uid] for uid in sorted(per_user)]
        )
        assert map_over_users(per_user) == expected


class TestMonotonicity:
    @settings(max_examples=200)
    @given(relevance=relevance_lists.filter(lambda r: True in r and False in r))
    def test_promoting_a_relevant_item_never_hurts_ap(self, relevance):
        """Swapping a relevant item with the irrelevant item directly
        above it is a strict ranking improvement; AP must not drop."""
        for index in range(1, len(relevance)):
            if relevance[index] and not relevance[index - 1]:
                promoted = list(relevance)
                promoted[index - 1], promoted[index] = (
                    promoted[index],
                    promoted[index - 1],
                )
                assert average_precision(promoted) >= average_precision(relevance)

    @given(relevance=relevance_lists)
    def test_perfect_ranking_maximises_ap(self, relevance):
        if not any(relevance):
            return
        ideal = sorted(relevance, reverse=True)
        assert average_precision(ideal) >= average_precision(relevance)
        assert average_precision(ideal) == 1.0
