"""Tests for the timing harness."""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.eval.timing import Stopwatch, TimingSummary, summarize_timings


class TestStopwatch:
    def test_accumulates_segments(self):
        watch = Stopwatch()
        with watch.measure():
            time.sleep(0.01)
        first = watch.elapsed
        with watch.measure():
            time.sleep(0.01)
        assert watch.elapsed > first >= 0.01

    def test_measures_even_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch.measure():
                time.sleep(0.005)
                raise RuntimeError("boom")
        assert watch.elapsed >= 0.005

    def test_reset(self):
        watch = Stopwatch()
        with watch.measure():
            pass
        watch.reset()
        assert watch.elapsed == 0.0


class TestSummarize:
    def test_summary(self):
        summary = summarize_timings([1.0, 3.0, 2.0])
        assert summary == TimingSummary(minimum=1.0, average=2.0, maximum=3.0)

    def test_empty_rejected_with_library_error(self):
        with pytest.raises(ConfigurationError):
            summarize_timings([])

    def test_empty_error_is_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            summarize_timings([])
