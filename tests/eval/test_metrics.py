"""Tests for AP / MAP / MAP-deviation metrics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.metrics import (
    MapSummary,
    average_precision,
    map_over_users,
    mean_average_precision,
    precision_at,
    summarize_maps,
)


class TestPrecisionAt:
    def test_prefix_precision(self):
        relevance = [True, False, True, False]
        assert precision_at(relevance, 1) == 1.0
        assert precision_at(relevance, 2) == 0.5
        assert precision_at(relevance, 4) == 0.5

    def test_n_beyond_length_uses_available(self):
        assert precision_at([True], 5) == 1.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            precision_at([True], 0)

    def test_empty_list(self):
        assert precision_at([], 3) == 0.0


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([True, True, False, False]) == 1.0

    def test_worst_ranking(self):
        # Two relevant items at the bottom of four.
        ap = average_precision([False, False, True, True])
        assert math.isclose(ap, (1 / 3 + 2 / 4) / 2)

    def test_textbook_example(self):
        # relevant at ranks 1 and 3: (1/1 + 2/3) / 2
        ap = average_precision([True, False, True])
        assert math.isclose(ap, (1.0 + 2 / 3) / 2)

    def test_no_relevant(self):
        assert average_precision([False, False]) == 0.0

    def test_empty(self):
        assert average_precision([]) == 0.0

    def test_single_relevant_at_rank_k(self):
        for k in range(1, 6):
            flags = [False] * (k - 1) + [True]
            assert math.isclose(average_precision(flags), 1 / k)

    @given(st.lists(st.booleans(), max_size=30))
    def test_bounded(self, flags):
        assert 0.0 <= average_precision(flags) <= 1.0

    @given(st.integers(1, 8), st.integers(0, 8))
    def test_perfect_is_upper_bound(self, n_pos, n_neg):
        perfect = [True] * n_pos + [False] * n_neg
        worst = [False] * n_neg + [True] * n_pos
        assert average_precision(perfect) >= average_precision(worst)


class TestMeanAveragePrecision:
    def test_mean(self):
        assert mean_average_precision([0.2, 0.4]) == pytest.approx(0.3)

    def test_empty_group(self):
        assert mean_average_precision([]) == 0.0


class TestMapOverUsers:
    def test_matches_plain_mean(self):
        aps = {3: 0.2, 1: 0.4, 2: 0.6}
        assert map_over_users(aps) == pytest.approx(0.4)

    def test_insertion_order_is_irrelevant(self):
        # The point of the helper: a live-evaluated dict and a
        # journal-restored one produce bit-identical MAP.
        live = {1: 0.1, 2: 0.2, 3: 0.3}
        restored = {3: 0.3, 1: 0.1, 2: 0.2}
        assert map_over_users(live) == map_over_users(restored)

    def test_empty_group(self):
        assert map_over_users({}) == 0.0


class TestMapSummary:
    def test_summary_fields(self):
        summary = summarize_maps([0.2, 0.5, 0.3])
        assert summary == MapSummary(minimum=0.2, mean=pytest.approx(1 / 3), maximum=0.5)

    def test_deviation_is_robustness_measure(self):
        assert summarize_maps([0.2, 0.5]).deviation == pytest.approx(0.3)

    def test_single_config_zero_deviation(self):
        assert summarize_maps([0.4]).deviation == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_maps([])
